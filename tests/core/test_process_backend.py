"""Process backend: shared-memory lifecycle, worker death, parity.

What this file pins down beyond the parity suites (which CI also runs
with ``REPRO_BACKEND=process``):

* segment lifecycle — every card instance is one ``/dev/shm`` segment,
  refcounted across worker attachments, unlinked eagerly on evict /
  destroy and at ``fini()`` (zero leaked segments, crash-safe via the
  host's resource tracker);
* worker death — a SIGKILLed worker fails its in-flight actions with a
  transient :class:`HStreamsBackendDied` instead of hanging waits, and
  ``failure_policy="retry"`` respawns a fresh worker;
* remote eligibility — only picklable kernels execute in workers, under
  every start method; closures (which can capture host-process state)
  and unpicklable arguments fall back to host-side execution with
  identical results, so thread-backend programs keep their semantics.
"""

import glob
import multiprocessing as mp
import operator
import os
import pickle
import signal
import threading
import time

import numpy as np
import pytest

from repro import (
    FaultPlan,
    FaultSpec,
    HStreams,
    XferDirection,
    make_platform,
    is_transient,
    mark_transient,
)
from repro.core.errors import HStreamsBackendDied
from repro.core.faults import inject_faults
from repro.core.process_backend import ProcessBackend


def runtime(ncards=2, start_method=None, **kw):
    return HStreams(
        platform=make_platform("HSW", ncards),
        backend=ProcessBackend(start_method=start_method),
        trace=False,
        **kw,
    )


# Module-level so the spawn start method can pickle them by reference.
def _double(x):
    np.multiply(x, 2.0, out=x)


def _sleep_kernel(x, seconds):
    time.sleep(seconds)
    x += 1.0


def _roundtrip(hs, stream, buf, n, kernel, args):
    hs.enqueue_xfer(stream, buf)
    hs.enqueue_compute(stream, kernel, args=args)
    hs.enqueue_xfer(stream, buf, XferDirection.SINK_TO_SRC)


def shm_entries(names):
    """Which of the named segments still exist under /dev/shm."""
    return [n for n in names if os.path.exists(f"/dev/shm/{n}")]


class TestExecution:
    def test_two_domain_roundtrip_runs_remote(self):
        hs = runtime()
        hs.register_kernel("double", fn=_double)
        arrays, bufs = [], []
        for d in (1, 2):
            s = hs.stream_create(domain=d, ncores=1)
            a = np.arange(16.0)
            buf = hs.wrap(a)
            _roundtrip(hs, s, buf, 16, "double", (buf.tensor((16,)),))
            arrays.append(a)
            bufs.append(buf)
        hs.thread_synchronize()
        for a in arrays:
            np.testing.assert_array_equal(a, np.arange(16.0) * 2)
        m = hs.metrics()["backend"]
        assert m["name"] == "process"
        assert m["remote_actions"] == 2
        assert m["fallback_actions"] == 0
        assert set(m["workers"]) == {1, 2}
        assert all(w["alive"] for w in m["workers"].values())
        # Two H2D and two D2H memcpys over the shared mappings; nothing
        # was elided or host-sunk, so no zero-copy bytes yet.
        assert m["bytes_copied"] == 4 * 128
        assert m["bytes_zero_copy"] == 0
        hs.fini()

    def test_closure_kernels_fall_back_host_side(self):
        # Even under fork (where the child *could* inherit the closure by
        # memory image) an unpicklable kernel stays host-side: a closure
        # is exactly the kernel that can capture host state, and its
        # side effects must stay visible to the host program.
        hs = runtime(start_method="fork")
        seen = []
        def scale(x):
            seen.append(os.getpid())
            np.multiply(x, 3.0, out=x)
        hs.register_kernel("scale", fn=scale)
        s = hs.stream_create(domain=1, ncores=1)
        a = np.arange(8.0)
        buf = hs.wrap(a)
        _roundtrip(hs, s, buf, 8, "scale", (buf.tensor((8,)),))
        hs.thread_synchronize()
        np.testing.assert_array_equal(a, np.arange(8.0) * 3)
        assert seen == [os.getpid()]
        m = hs.metrics()["backend"]
        assert m["remote_actions"] == 0 and m["fallback_actions"] == 1
        hs.fini()

    def test_spawn_ships_picklable_kernels(self):
        hs = runtime(start_method="spawn")
        hs.register_kernel("iadd", fn=operator.iadd)
        s = hs.stream_create(domain=1, ncores=1)
        a = np.arange(8.0)
        buf = hs.wrap(a)
        _roundtrip(hs, s, buf, 8, "iadd", (buf.tensor((8,)), 5.0))
        hs.thread_synchronize()
        np.testing.assert_array_equal(a, np.arange(8.0) + 5)
        assert hs.metrics()["backend"]["start_method"] == "spawn"
        assert hs.metrics()["backend"]["remote_actions"] == 1
        hs.fini()

    def test_unpicklable_argument_falls_back_host_side(self):
        hs = runtime()
        lock = threading.Lock()  # cannot cross a process boundary

        def guarded(x, lk):
            with lk:
                x += 1.0

        hs.register_kernel("guarded", fn=guarded)
        s = hs.stream_create(domain=1, ncores=1)
        a = np.zeros(4)
        buf = hs.wrap(a)
        _roundtrip(hs, s, buf, 4, "guarded", (buf.tensor((4,)), lock))
        hs.thread_synchronize()
        np.testing.assert_array_equal(a, np.ones(4))
        m = hs.metrics()["backend"]
        assert m["fallback_actions"] == 1
        assert m["remote_actions"] == 0
        hs.fini()

    def test_host_domain_compute_stays_host_side(self):
        hs = runtime()
        seen = []
        hs.register_kernel("note", fn=lambda x: seen.append(os.getpid()))
        s = hs.stream_create(domain=0, ncores=1)
        buf = hs.buffer_create(nbytes=64)
        hs.enqueue_compute(s, "note", args=(buf.all_inout(),))
        hs.thread_synchronize()
        # Ran in this process (a worker could not mutate our list).
        assert seen == [os.getpid()]
        hs.fini()

    def test_kernel_error_crosses_the_boundary_with_transient_flag(self):
        def flaky(x):
            raise mark_transient(ValueError("remote transient"))

        hs = runtime(failure_policy="retry")
        hs.register_kernel("flaky", fn=flaky)
        s = hs.stream_create(domain=1, ncores=1)
        buf = hs.buffer_create(nbytes=64)
        ev = hs.enqueue_compute(s, "flaky", args=(buf.all_inout(),))
        with pytest.raises(ValueError, match="remote transient"):
            hs.thread_synchronize()
        # Retries happened (the flag survived pickling), then the cap hit.
        assert ev.record.retries == hs.config.retry_limit
        hs.clear_failure()
        hs.fini()


class TestSegmentLifecycle:
    def test_instances_are_shared_memory_segments(self):
        hs = runtime()
        s = hs.stream_create(domain=1, ncores=1)
        buf = hs.wrap(np.arange(32.0))
        hs.enqueue_xfer(s, buf)
        hs.thread_synchronize()
        names = hs.backend.live_segment_names()
        assert len(names) == 1
        assert shm_entries(names) == names
        m = hs.metrics()["backend"]["segments"]
        assert m["created"] == 1 and m["live"] == 1 and m["unlinked"] == 0
        hs.fini()
        assert shm_entries(names) == []

    def test_evict_unlinks_the_segment(self):
        hs = runtime()
        s = hs.stream_create(domain=1, ncores=1)
        buf = hs.wrap(np.arange(32.0))
        hs.enqueue_xfer(s, buf)
        hs.thread_synchronize()
        names = hs.backend.live_segment_names()
        hs.buffer_evict(buf, 1)
        assert shm_entries(names) == []
        m = hs.metrics()["backend"]["segments"]
        assert m["live"] == 0 and m["unlinked"] == 1
        hs.fini()

    def test_destroy_unlinks_every_domain_instance(self):
        hs = runtime(ncards=2)
        buf = hs.wrap(np.arange(32.0))
        for d in (1, 2):
            s = hs.stream_create(domain=d, ncores=1)
            hs.enqueue_xfer(s, buf)
        hs.thread_synchronize()
        names = hs.backend.live_segment_names()
        assert len(names) == 2
        hs.buffer_destroy(buf)
        assert shm_entries(names) == []
        assert hs.metrics()["backend"]["segments"]["live"] == 0
        hs.fini()

    def test_fini_leaves_zero_dev_shm_segments(self):
        hs = runtime(ncards=2)
        hs.register_kernel("double", fn=_double)
        names = []
        for d in (1, 2):
            s = hs.stream_create(domain=d, ncores=1)
            a = np.arange(64.0)
            buf = hs.wrap(a)
            _roundtrip(hs, s, buf, 64, "double", (buf.tensor((64,)),))
        hs.thread_synchronize()
        names = hs.backend.live_segment_names()
        assert len(names) == 2
        hs.fini()
        assert shm_entries(names) == []

    def test_no_leak_after_fault_matrix(self):
        """Every fault×policy cell tears down to zero live segments."""
        for policy in ("poison", "fail_fast", "retry"):
            for transient in (False, True):
                hs = runtime(failure_policy=policy)
                hs.register_kernel("double", fn=_double)
                inject_faults(hs, FaultPlan(specs=(
                    FaultSpec(kind="compute", kernel="double", nth=1,
                              times=2, transient=transient),
                )))
                s = hs.stream_create(domain=1, ncores=1)
                a = np.arange(16.0)
                buf = hs.wrap(a)
                try:
                    # fail_fast may surface at an enqueue, not the sync.
                    _roundtrip(hs, s, buf, 16, "double", (buf.tensor((16,)),))
                    hs.thread_synchronize()
                except Exception:
                    hs.clear_failure()
                names = hs.backend.live_segment_names()
                hs.fini()
                assert shm_entries(names) == [], (policy, transient)

    @pytest.mark.parametrize("start_method", ["fork", "spawn"])
    def test_lifecycle_parity_across_start_methods(self, start_method):
        hs = runtime(start_method=start_method)
        hs.register_kernel("iadd", fn=operator.iadd)
        s = hs.stream_create(domain=1, ncores=1)
        a = np.arange(8.0)
        buf = hs.wrap(a)
        _roundtrip(hs, s, buf, 8, "iadd", (buf.tensor((8,)), 1.0))
        hs.thread_synchronize()
        names = hs.backend.live_segment_names()
        assert len(names) == 1
        np.testing.assert_array_equal(a, np.arange(8.0) + 1)
        hs.fini()
        assert shm_entries(names) == []


def _wait_for_worker(hs, domain, timeout=10.0):
    """The pid of ``domain``'s worker once its first dispatch spawned it."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        w = hs.backend._workers.get(domain)
        if w is not None and w.process.pid is not None:
            return w.process.pid
        time.sleep(0.01)
    raise AssertionError(f"no worker appeared for domain {domain}")


class TestForkSafety:
    def test_worker_attach_survives_tracker_lock_held_at_fork(self):
        # Deterministic reproduction of a fork race: the resource
        # tracker's process-private lock is held (as another slot
        # thread's segment registration would hold it) at the moment
        # the first compute dispatch forks the domain worker. The fork
        # image then contains the lock in the held state forever, so a
        # worker whose first segment attach touched the tracker would
        # deadlock before completing any action. Workers detach from
        # the tracker at startup precisely so this cannot happen.
        from multiprocessing import resource_tracker

        tracker = getattr(resource_tracker, "_resource_tracker", None)
        lock = getattr(tracker, "_lock", None)
        if lock is None:
            pytest.skip("stdlib resource tracker has no lock to hold")
        if "fork" not in mp.get_all_start_methods():
            pytest.skip("fork start method unavailable")

        from repro.core.properties import RuntimeConfig

        hs = runtime(
            ncards=1,
            start_method="fork",
            config=RuntimeConfig(wait_timeout_s=60.0),
        )
        hs.register_kernel("double", fn=_double)
        s = hs.stream_create(domain=1, ncores=1)
        a = np.arange(16.0)
        buf = hs.wrap(a)
        # Segment creation (and its tracker registration) happens here,
        # while the tracker lock is still free.
        hs.enqueue_xfer(s, buf)
        hs.thread_synchronize()
        assert lock.acquire(timeout=10)
        try:
            # First compute → worker fork + first remote attach, with
            # the tracker lock held across both.
            hs.enqueue_compute(s, "double", args=(buf.tensor((16,)),))
            hs.thread_synchronize()
        finally:
            lock.release()
        hs.enqueue_xfer(s, buf, direction=XferDirection.SINK_TO_SRC)
        hs.thread_synchronize()
        np.testing.assert_array_equal(a, np.arange(16.0) * 2)
        assert hs.metrics()["backend"]["remote_actions"] == 1
        hs.fini()


class TestWorkerDeath:
    def test_killed_worker_fails_actions_instead_of_hanging(self):
        hs = runtime()
        hs.register_kernel("sleep", fn=_sleep_kernel)
        s = hs.stream_create(domain=1, ncores=1)
        buf = hs.wrap(np.zeros(8))
        hs.enqueue_xfer(s, buf)
        ev = hs.enqueue_compute(s, "sleep", args=(buf.tensor((8,)), 30.0))
        pid = _wait_for_worker(hs, 1)
        os.kill(pid, signal.SIGKILL)
        t0 = time.monotonic()
        with pytest.raises(HStreamsBackendDied, match="exited"):
            hs.thread_synchronize(timeout=20.0)
        # The wait resolved via the pump's death detection, not the
        # 30-second kernel (which never finishes anywhere).
        assert time.monotonic() - t0 < 15.0
        assert ev.record.state == "failed"
        assert is_transient(hs.failure_errors()[0])
        m = hs.metrics()["backend"]
        assert m["worker_deaths"] == 1
        hs.clear_failure()
        hs.fini()

    def test_retry_policy_respawns_a_fresh_worker(self):
        hs = runtime(failure_policy="retry")
        hs.register_kernel("sleep", fn=_sleep_kernel)
        s = hs.stream_create(domain=1, ncores=1)
        a = np.zeros(8)
        buf = hs.wrap(a)
        hs.enqueue_xfer(s, buf)
        ev = hs.enqueue_compute(s, "sleep", args=(buf.tensor((8,)), 0.4))
        hs.enqueue_xfer(s, buf, XferDirection.SINK_TO_SRC)
        pid = _wait_for_worker(hs, 1)
        time.sleep(0.1)  # let the kernel start sleeping in the worker
        os.kill(pid, signal.SIGKILL)
        hs.thread_synchronize(timeout=30.0)
        assert not hs.failed
        assert ev.record.state == "complete"
        assert ev.record.retries >= 1
        np.testing.assert_array_equal(a, np.ones(8))
        m = hs.metrics()["backend"]
        assert m["worker_deaths"] == 1
        assert m["respawns"] == 1
        new_pid = hs.backend._workers[1].process.pid
        assert new_pid != pid
        hs.fini()

    def test_backend_died_error_is_picklable_and_transient(self):
        err = mark_transient(HStreamsBackendDied("worker gone"))
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, HStreamsBackendDied)
        assert is_transient(clone)
        assert clone.code == "HSTR_RESULT_BACKEND_DIED"


class TestMetricsBlock:
    def test_backend_block_only_on_process_backend(self):
        hs = HStreams(make_platform("HSW", 1), backend="thread", trace=False)
        assert "backend" not in hs.metrics()
        hs.fini()
        hs = runtime()
        m = hs.metrics()["backend"]
        for key in ("workers", "remote_actions", "fallback_actions",
                    "ipc_round_trip_s", "bytes_zero_copy", "bytes_copied",
                    "worker_deaths", "respawns", "segments"):
            assert key in m, key
        hs.fini()

    def test_env_override_upgrades_thread_to_process(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "process")
        hs = HStreams(make_platform("HSW", 1), backend="thread", trace=False)
        assert isinstance(hs.backend, ProcessBackend)
        hs.fini()
        # Explicit sim requests are never overridden.
        hs = HStreams(make_platform("HSW", 1), backend="sim", trace=False)
        assert not isinstance(hs.backend, ProcessBackend)
        hs.fini()
