"""Torn-snapshot regression: ``HStreams.metrics()`` under concurrency.

``metrics()`` merges two subsystems' counters — the scheduler's action
totals and the memory manager's transfer-elision counters. Both advance
inside the *same* enqueue critical section, so a correct snapshot taken
under the scheduler lock can never show one subsystem ahead of the
other. The old implementation took the lock once per subsystem, letting
a reader observe memory counters from after enqueues the scheduler
block had not seen yet.

These tests hammer ``metrics()`` from a reader thread while the source
thread (and, under faults, the retry machinery) is running, and assert
cross-subsystem invariants that only hold for single-instant snapshots.
"""

from __future__ import annotations

import threading

import pytest

from repro import HStreams, RuntimeConfig, make_platform
from repro.core.faults import FaultPlan, FaultSpec, inject_faults
from repro.sim.kernels import dgemm


class _MetricsReader:
    """Polls ``hs.metrics()`` in a tight loop, checking each snapshot."""

    def __init__(self, hs, check):
        self.hs = hs
        self.check = check
        self.snapshots = 0
        self.failures = []
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def __enter__(self):
        self._thread.start()
        return self

    def __exit__(self, *exc):
        self._stop.set()
        self._thread.join(timeout=30.0)
        assert not self._thread.is_alive(), "metrics reader wedged"

    def _run(self):
        while not self._stop.is_set():
            snap = self.hs.metrics()
            self.snapshots += 1
            try:
                self.check(snap)
            except AssertionError as exc:  # pragma: no cover - failure path
                self.failures.append(str(exc))
                return


class TestMetricsSnapshotConsistency:
    def test_alias_counter_never_ahead_of_enqueued(self):
        """Sharp cross-subsystem invariant, all-transfer program.

        Every action is a host-as-target transfer, so the memory
        manager counts exactly one ``aliased_transfers`` per enqueued
        action, in the same critical section. Any snapshot where
        ``aliased > enqueued`` (or scheduler-side totals disagree with
        each other) is torn.
        """
        hs = HStreams(platform=make_platform("HSW", 1), backend="thread",
                      trace=False)

        def check(snap):
            acts = snap["actions"]
            mem = snap["memory"]
            moved = mem["aliased_transfers"] + mem["elided_transfers"]
            assert moved <= acts["enqueued"], (
                f"memory ahead of scheduler: {moved} transfers counted "
                f"vs {acts['enqueued']} enqueued"
            )
            settled = (
                acts["completed"] + acts["failed"] + acts["cancelled"]
            )
            assert settled + acts["in_flight"] == acts["enqueued"], (
                f"scheduler totals torn: {settled} settled + "
                f"{acts['in_flight']} in flight != {acts['enqueued']}"
            )

        try:
            s = hs.stream_create(domain=0)  # host-as-target: every
            buf = hs.buffer_create(nbytes=4096)  # xfer aliases
            with _MetricsReader(hs, check) as reader:
                for _ in range(600):
                    hs.enqueue_xfer(s, buf)
                hs.thread_synchronize()
            assert reader.failures == []
            assert reader.snapshots > 0
            final = hs.metrics()
            assert final["memory"]["aliased_transfers"] == 600
            assert final["actions"]["enqueued"] == 600
        finally:
            hs.fini()

    @pytest.mark.parametrize("backend", ["thread", "sim"])
    def test_hammer_during_fault_matrix_run(self, backend):
        """Reader thread vs a retry-heavy faulted run on both backends."""
        hs = HStreams(platform=make_platform("HSW", 2), backend=backend,
                      trace=False, failure_policy="retry",
                      config=RuntimeConfig(retry_limit=3,
                                           retry_backoff_s=1e-4))

        def check(snap):
            acts = snap["actions"]
            mem = snap["memory"]
            moved = mem["aliased_transfers"] + mem["elided_transfers"]
            assert moved <= acts["enqueued"]
            settled = (
                acts["completed"] + acts["failed"] + acts["cancelled"]
            )
            assert settled + acts["in_flight"] == acts["enqueued"]
            assert 0 <= mem["elided_bytes"]

        try:
            hs.register_kernel("k", fn=lambda x: None,
                               cost_fn=lambda *a: dgemm(32, 32, 32))
            injector = inject_faults(
                hs,
                FaultPlan(
                    specs=(
                        FaultSpec(kind="compute", rate=0.25, times=2,
                                  transient=True),
                    ),
                    seed=7,
                ),
            )
            streams = [hs.stream_create(domain=d % 2 + 1, ncores=2)
                       for d in range(4)]
            bufs = [hs.buffer_create(nbytes=1024) for _ in range(4)]
            with _MetricsReader(hs, check) as reader:
                for i in range(200):
                    s = streams[i % len(streams)]
                    buf = bufs[i % len(bufs)]
                    hs.enqueue_xfer(s, buf)
                    hs.enqueue_compute(s, "k", args=(buf.all_inout(),))
                hs.thread_synchronize()
            assert reader.failures == []
            assert reader.snapshots > 0
            assert injector.injected > 0  # the faults really fired
            final = hs.metrics()
            assert final["actions"]["retried"] > 0
            assert final["actions"]["in_flight"] == 0
        finally:
            hs.fini()
