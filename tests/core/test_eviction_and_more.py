"""Tests for buffer eviction, Chrome trace export, and multi-unit
resources — the working-set and tooling features around the core."""

import json

import numpy as np
import pytest

from repro import HStreams, make_platform
from repro.core.errors import HStreamsBadArgument, HStreamsNotFound
from repro.sim.engine import Engine, Resource, SimError
from repro.sim.kernels import dgemm
from repro.sim.trace import Tracer


class TestBufferEviction:
    def test_evict_releases_accounting(self):
        hs = HStreams(platform=make_platform("HSW", 1), backend="sim", trace=False)
        buf = hs.buffer_create(nbytes=1 << 20, domains=[1])
        before = hs.domain(1).allocated_bytes
        hs.buffer_evict(buf, 1)
        assert hs.domain(1).allocated_bytes == before - (1 << 20)
        assert not buf.instantiated_in(1)

    def test_evicted_instance_reallocates_on_next_use(self):
        hs = HStreams(platform=make_platform("HSW", 1), backend="sim", trace=False)
        s = hs.stream_create(domain=1, ncores=61)
        buf = hs.buffer_create(nbytes=1 << 20, domains=[1])
        hs.buffer_evict(buf, 1)
        hs.enqueue_xfer(s, buf)  # re-instantiates lazily
        hs.thread_synchronize()
        assert buf.instantiated_in(1)

    def test_host_instance_cannot_be_evicted(self):
        hs = HStreams(backend="sim", trace=False)
        buf = hs.buffer_create(nbytes=64)
        with pytest.raises(HStreamsBadArgument):
            hs.buffer_evict(buf, 0)

    def test_evicting_missing_instance_raises(self):
        hs = HStreams(backend="sim", trace=False)
        buf = hs.buffer_create(nbytes=64)
        with pytest.raises(HStreamsNotFound):
            hs.buffer_evict(buf, 1)

    def test_eviction_cycles_a_working_set_past_card_capacity(self):
        """The Fig. 6 n=30000 situation: more tiles than card memory,
        processed by evicting used tiles."""
        from dataclasses import replace

        from repro.sim.platforms import HSW, KNC_7120A, Platform

        small_card = Platform(
            name="small", host=HSW, cards=(replace(KNC_7120A, ram_gb=0.01),)
        )  # ~10 MB card
        hs = HStreams(platform=small_card, backend="sim", trace=False)
        hs.register_kernel("gemm", cost_fn=lambda m, n, k, *a: dgemm(m, n, k))
        s = hs.stream_create(domain=1, ncores=61)
        tile_bytes = 4 << 20  # 4 MB: two at a time at most
        total = 0
        for _ in range(8):  # 32 MB total through a 10 MB card
            buf = hs.buffer_create(nbytes=tile_bytes)
            hs.enqueue_xfer(s, buf)
            hs.enqueue_compute(s, "gemm", args=(256, 256, 256, buf.all_inout()))
            hs.stream_synchronize(s)
            hs.buffer_evict(buf, 1)
            total += tile_bytes
        assert total == 32 << 20
        assert hs.domain(1).allocated_bytes == 0

    def test_evict_on_thread_backend_frees_real_memory(self):
        hs = HStreams(platform=make_platform("HSW", 1), backend="thread", trace=False)
        hs.register_kernel("fill", fn=lambda x: x.fill(1.0))
        s = hs.stream_create(domain=1, ncores=8)
        data = np.zeros(8)
        buf = hs.wrap(data)
        hs.enqueue_xfer(s, buf)
        hs.thread_synchronize()
        hs.buffer_evict(buf, 1)
        assert not buf.instantiated_in(1)
        assert buf.instantiated_in(0)  # host copy untouched
        hs.fini()


class TestChromeTraceExport:
    def make(self):
        tr = Tracer()
        tr.record("s0", 0.0, 1e-3, "gemm", kind="compute")
        tr.record("link", 5e-4, 2e-3, "xfer", kind="transfer")
        return tr

    def test_events_and_metadata(self):
        trace = self.make().to_chrome_trace()
        meta = [e for e in trace if e["ph"] == "M"]
        spans = [e for e in trace if e["ph"] == "X"]
        assert {m["args"]["name"] for m in meta} == {"s0", "link"}
        assert len(spans) == 2

    def test_microsecond_units(self):
        spans = [e for e in self.make().to_chrome_trace() if e["ph"] == "X"]
        gemm = next(e for e in spans if e["name"] == "gemm")
        assert gemm["ts"] == pytest.approx(0.0)
        assert gemm["dur"] == pytest.approx(1000.0)

    def test_json_serializable(self):
        assert json.loads(json.dumps(self.make().to_chrome_trace()))

    def test_runtime_trace_exports(self):
        hs = HStreams(platform=make_platform("HSW", 1), backend="sim")
        hs.register_kernel("gemm", cost_fn=lambda m, n, k, *a: dgemm(m, n, k))
        s = hs.stream_create(domain=1, ncores=61)
        b = hs.buffer_create(nbytes=1 << 20, domains=[1])
        hs.enqueue_xfer(s, b)
        hs.enqueue_compute(s, "gemm", args=(512, 512, 512, b.all_inout()))
        hs.thread_synchronize()
        trace = hs.tracer.to_chrome_trace()
        assert any(e.get("cat") == "compute" for e in trace)
        assert any(e.get("cat") == "transfer" for e in trace)


class TestMultiUnitResource:
    def test_request_more_than_capacity_rejected(self):
        eng = Engine()
        res = Resource(eng, capacity=4)
        with pytest.raises(SimError):
            res.request(5)
        with pytest.raises(SimError):
            res.request(0)

    def test_units_accumulate(self):
        eng = Engine()
        res = Resource(eng, capacity=10)
        res.request(4)
        res.request(5)
        eng.run()
        assert res.in_use == 9

    def test_release_units(self):
        eng = Engine()
        res = Resource(eng, capacity=10)
        res.request(6)
        eng.run()
        res.release(4)
        assert res.in_use == 2
        with pytest.raises(SimError):
            res.release(3)

    def test_head_blocking_fifo(self):
        """A big request at the head is not overtaken by later small ones."""
        eng = Engine()
        res = Resource(eng, capacity=10)
        grants = []

        def user(tag, units, hold):
            yield res.request(units)
            grants.append(tag)
            yield eng.timeout(hold)
            res.release(units)

        eng.process(user("first-8", 8, 1.0))
        eng.process(user("big-6", 6, 1.0))   # must wait for 8 to release
        eng.process(user("small-2", 2, 1.0))  # could fit, but queued behind
        eng.run()
        assert grants == ["first-8", "big-6", "small-2"]

    def test_concurrent_fit(self):
        eng = Engine()
        res = Resource(eng, capacity=10)
        done = []

        def user(tag, units):
            yield res.request(units)
            yield eng.timeout(1.0)
            res.release(units)
            done.append((tag, eng.now))

        eng.process(user("a", 5))
        eng.process(user("b", 5))
        eng.run()
        assert [t for _, t in done] == [pytest.approx(1.0), pytest.approx(1.0)]

    def test_full_width_kernels_contend_in_sim(self):
        """Two full-width streams on one domain serialize compute."""
        hs = HStreams(platform=make_platform("HSW", 1), backend="sim", trace=False)
        hs.register_kernel("gemm", cost_fn=lambda m, n, k, *a: dgemm(m, n, k))
        s1 = hs.stream_create(domain=1, cpu_mask=range(61))
        s2 = hs.stream_create(domain=1, cpu_mask=range(61))
        b1 = hs.buffer_create(nbytes=1 << 20, domains=[1])
        b2 = hs.buffer_create(nbytes=1 << 20, domains=[1])
        t0 = hs.elapsed()
        hs.enqueue_compute(s1, "gemm", args=(2048, 2048, 2048, b1.all_inout()))
        hs.enqueue_compute(s2, "gemm", args=(2048, 2048, 2048, b2.all_inout()))
        hs.thread_synchronize()
        both = hs.elapsed() - t0

        hs2 = HStreams(platform=make_platform("HSW", 1), backend="sim", trace=False)
        hs2.register_kernel("gemm", cost_fn=lambda m, n, k, *a: dgemm(m, n, k))
        s = hs2.stream_create(domain=1, cpu_mask=range(61))
        b = hs2.buffer_create(nbytes=1 << 20, domains=[1])
        t0 = hs2.elapsed()
        hs2.enqueue_compute(s, "gemm", args=(2048, 2048, 2048, b.all_inout()))
        hs2.thread_synchronize()
        one = hs2.elapsed() - t0
        assert both > 1.8 * one  # serialized, not concurrent
