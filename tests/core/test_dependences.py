"""Tests for the intra-stream dependence window."""

from typing import List

import pytest

from repro.core.actions import Action, ActionKind, Operand, OperandMode
from repro.core.buffer import Buffer, ProxyAddressSpace
from repro.core.dependences import StreamWindow


class FakeEvent:
    """Stands in for HEvent: manual completion flag."""

    def __init__(self):
        self._done = False

    def is_complete(self):
        return self._done

    def complete(self):
        self._done = True


def make_action(ops, barrier=False) -> Action:
    a = Action(
        kind=ActionKind.SYNC if barrier else ActionKind.COMPUTE,
        stream=None,
        operands=tuple(ops),
        barrier=barrier,
    )
    a.completion = FakeEvent()
    return a


@pytest.fixture()
def buf():
    return Buffer(ProxyAddressSpace(), nbytes=4096)


def rd(buf, off, n):
    return Operand(buf, off, n, OperandMode.IN)


def wr(buf, off, n):
    return Operand(buf, off, n, OperandMode.OUT)


class TestDependenceRelaxation:
    def test_disjoint_actions_have_no_deps(self, buf):
        w = StreamWindow()
        a = make_action([wr(buf, 0, 100)])
        w.add(a)
        b = make_action([wr(buf, 200, 100)])
        assert w.deps_for(b) == []

    def test_conflicting_action_depends_on_predecessor(self, buf):
        w = StreamWindow()
        a = make_action([wr(buf, 0, 100)])
        w.add(a)
        b = make_action([rd(buf, 50, 10)])
        assert w.deps_for(b) == [a]

    def test_read_read_is_free(self, buf):
        w = StreamWindow()
        a = make_action([rd(buf, 0, 100)])
        w.add(a)
        b = make_action([rd(buf, 0, 100)])
        assert w.deps_for(b) == []

    def test_completed_predecessors_impose_nothing(self, buf):
        w = StreamWindow()
        a = make_action([wr(buf, 0, 100)])
        w.add(a)
        a.completion.complete()
        b = make_action([rd(buf, 0, 100)])
        assert w.deps_for(b) == []

    def test_multiple_conflicts_all_collected_in_order(self, buf):
        w = StreamWindow()
        a = make_action([wr(buf, 0, 100)])
        b = make_action([rd(buf, 0, 50)])
        c = make_action([rd(buf, 50, 50)])
        for x in (a, b, c):
            w.add(x)
        d = make_action([wr(buf, 0, 100)])
        assert w.deps_for(d) == [a, b, c]

    def test_barrier_cuts_off_older_history(self, buf):
        w = StreamWindow()
        old = make_action([wr(buf, 0, 100)])
        w.add(old)
        bar = make_action([], barrier=True)
        w.add(bar)
        nxt = make_action([rd(buf, 0, 100)])
        # The barrier already orders `old`; only the barrier is a dep.
        assert w.deps_for(nxt) == [bar]

    def test_sync_with_operands_scopes_the_wait(self, buf):
        w = StreamWindow()
        scoped = make_action([wr(buf, 0, 64)])  # sync w/ operands acts like this
        w.add(scoped)
        unrelated = make_action([rd(buf, 1000, 64)])
        related = make_action([rd(buf, 0, 64)])
        assert w.deps_for(unrelated) == []
        assert w.deps_for(related) == [scoped]


class TestStrictFifo:
    def test_strict_depends_on_immediate_predecessor_only(self, buf):
        w = StreamWindow(strict_fifo=True)
        a = make_action([wr(buf, 0, 8)])
        w.add(a)
        b = make_action([wr(buf, 2000, 8)])  # disjoint, still ordered
        assert w.deps_for(b) == [a]
        w.add(b)
        c = make_action([rd(buf, 100, 8)])
        assert w.deps_for(c) == [b]

    def test_strict_empty_stream_has_no_deps(self, buf):
        w = StreamWindow(strict_fifo=True)
        assert w.deps_for(make_action([wr(buf, 0, 8)])) == []

    def test_strict_skips_completed_tail(self, buf):
        w = StreamWindow(strict_fifo=True)
        a = make_action([wr(buf, 0, 8)])
        w.add(a)
        a.completion.complete()
        b = make_action([wr(buf, 8, 8)])
        assert w.deps_for(b) == []


class TestWindowBookkeeping:
    def test_in_flight_counts_incomplete(self, buf):
        w = StreamWindow()
        a = make_action([wr(buf, 0, 8)])
        b = make_action([wr(buf, 8, 8)])
        w.add(a)
        w.add(b)
        assert w.in_flight == 2
        a.completion.complete()
        assert w.in_flight == 1

    def test_enqueued_count_never_decreases(self, buf):
        w = StreamWindow()
        for i in range(5):
            a = make_action([wr(buf, i * 8, 8)])
            w.add(a)
            a.completion.complete()
        assert w.enqueued_count == 5
        assert w.in_flight == 0

    def test_pending_completions(self, buf):
        w = StreamWindow()
        a = make_action([wr(buf, 0, 8)])
        b = make_action([wr(buf, 8, 8)])
        w.add(a)
        w.add(b)
        a.completion.complete()
        pend: List = w.pending_completions()
        assert pend == [b.completion]


class TestDependencePropertyFuzz:
    """Property: deps_for returns exactly the incomplete, conflicting
    predecessors (cut at the newest conflicting barrier)."""

    def _oracle(self, history, action):
        deps = []
        for prev in reversed(history):
            if prev.completion.is_complete():
                continue
            if prev.conflicts_with(action):
                deps.append(prev)
                if prev.barrier:
                    break
        deps.reverse()
        return deps

    def test_random_histories_match_oracle(self, buf):
        import numpy as np

        rng = np.random.default_rng(7)
        for trial in range(30):
            w = StreamWindow()
            history = []
            for _ in range(int(rng.integers(1, 20))):
                if rng.random() < 0.1:
                    a = make_action([], barrier=True)
                else:
                    off = int(rng.integers(0, 3500))
                    ln = int(rng.integers(1, 500))
                    mode = (OperandMode.IN if rng.random() < 0.5
                            else OperandMode.OUT)
                    a = make_action([Operand(buf, off, ln, mode)])
                if rng.random() < 0.4 and history:
                    history[int(rng.integers(0, len(history)))].completion.complete()
                probe_off = int(rng.integers(0, 3500))
                probe = make_action(
                    [Operand(buf, probe_off, int(rng.integers(1, 500)),
                             OperandMode.INOUT)]
                )
                assert w.deps_for(probe) == self._oracle(history, probe)
                w.add(a)
                history.append(a)
