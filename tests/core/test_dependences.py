"""Tests for the intra-stream dependence window."""

from typing import List

import pytest

from repro.core.actions import Action, ActionKind, Operand, OperandMode
from repro.core.buffer import Buffer, ProxyAddressSpace
from repro.core.dependences import StreamWindow


class FakeEvent:
    """Stands in for HEvent: manual completion flag."""

    def __init__(self):
        self._done = False

    def is_complete(self):
        return self._done

    def complete(self):
        self._done = True


def make_action(ops, barrier=False) -> Action:
    a = Action(
        kind=ActionKind.SYNC if barrier else ActionKind.COMPUTE,
        stream=None,
        operands=tuple(ops),
        barrier=barrier,
    )
    a.completion = FakeEvent()
    return a


@pytest.fixture()
def buf():
    return Buffer(ProxyAddressSpace(), nbytes=4096)


def rd(buf, off, n):
    return Operand(buf, off, n, OperandMode.IN)


def wr(buf, off, n):
    return Operand(buf, off, n, OperandMode.OUT)


class TestDependenceRelaxation:
    def test_disjoint_actions_have_no_deps(self, buf):
        w = StreamWindow()
        a = make_action([wr(buf, 0, 100)])
        w.add(a)
        b = make_action([wr(buf, 200, 100)])
        assert w.deps_for(b) == []

    def test_conflicting_action_depends_on_predecessor(self, buf):
        w = StreamWindow()
        a = make_action([wr(buf, 0, 100)])
        w.add(a)
        b = make_action([rd(buf, 50, 10)])
        assert w.deps_for(b) == [a]

    def test_read_read_is_free(self, buf):
        w = StreamWindow()
        a = make_action([rd(buf, 0, 100)])
        w.add(a)
        b = make_action([rd(buf, 0, 100)])
        assert w.deps_for(b) == []

    def test_completed_predecessors_impose_nothing(self, buf):
        w = StreamWindow()
        a = make_action([wr(buf, 0, 100)])
        w.add(a)
        a.completion.complete()
        b = make_action([rd(buf, 0, 100)])
        assert w.deps_for(b) == []

    def test_multiple_conflicts_all_collected_in_order(self, buf):
        w = StreamWindow()
        a = make_action([wr(buf, 0, 100)])
        b = make_action([rd(buf, 0, 50)])
        c = make_action([rd(buf, 50, 50)])
        for x in (a, b, c):
            w.add(x)
        d = make_action([wr(buf, 0, 100)])
        assert w.deps_for(d) == [a, b, c]

    def test_barrier_cuts_off_older_history(self, buf):
        w = StreamWindow()
        old = make_action([wr(buf, 0, 100)])
        w.add(old)
        bar = make_action([], barrier=True)
        w.add(bar)
        nxt = make_action([rd(buf, 0, 100)])
        # The barrier already orders `old`; only the barrier is a dep.
        assert w.deps_for(nxt) == [bar]

    def test_sync_with_operands_scopes_the_wait(self, buf):
        w = StreamWindow()
        scoped = make_action([wr(buf, 0, 64)])  # sync w/ operands acts like this
        w.add(scoped)
        unrelated = make_action([rd(buf, 1000, 64)])
        related = make_action([rd(buf, 0, 64)])
        assert w.deps_for(unrelated) == []
        assert w.deps_for(related) == [scoped]


class TestZeroLengthOperands:
    """Zero-length operands are dependence-inert under the relaxed
    policy (empty ranges never overlap, hence never conflict), while
    strict-FIFO streams still order every action by position. The
    hazard analyzer flags the pattern as ``zero-length-operand``."""

    def test_relaxed_policy_ignores_zero_length_operands(self, buf):
        w = StreamWindow()
        a = make_action([wr(buf, 0, 100)])
        w.add(a)
        probe = make_action([Operand(buf, 50, 0, OperandMode.INOUT)])
        assert w.deps_for(probe) == []

    def test_zero_length_predecessor_imposes_nothing(self, buf):
        w = StreamWindow()
        a = make_action([Operand(buf, 0, 0, OperandMode.OUT)])
        w.add(a)
        probe = make_action([wr(buf, 0, 100)])
        assert w.deps_for(probe) == []

    def test_zero_length_operands_never_overlap_or_conflict(self, buf):
        empty = Operand(buf, 50, 0, OperandMode.OUT)
        full = Operand(buf, 0, 100, OperandMode.OUT)
        assert not empty.overlaps(full)
        assert not full.overlaps(empty)
        assert not empty.conflicts_with(full)
        assert not empty.overlaps(empty)

    def test_strict_fifo_still_orders_zero_length_actions(self, buf):
        w = StreamWindow(strict_fifo=True)
        a = make_action([Operand(buf, 0, 0, OperandMode.OUT)])
        w.add(a)
        probe = make_action([Operand(buf, 50, 0, OperandMode.IN)])
        assert w.deps_for(probe) == [a]

    def test_barrier_still_orders_zero_length_actions(self, buf):
        # A barrier conflicts positionally, not through operand ranges.
        w = StreamWindow()
        bar = make_action([], barrier=True)
        w.add(bar)
        probe = make_action([Operand(buf, 0, 0, OperandMode.INOUT)])
        assert w.deps_for(probe) == [bar]


class TestStrictFifo:
    def test_strict_depends_on_immediate_predecessor_only(self, buf):
        w = StreamWindow(strict_fifo=True)
        a = make_action([wr(buf, 0, 8)])
        w.add(a)
        b = make_action([wr(buf, 2000, 8)])  # disjoint, still ordered
        assert w.deps_for(b) == [a]
        w.add(b)
        c = make_action([rd(buf, 100, 8)])
        assert w.deps_for(c) == [b]

    def test_strict_empty_stream_has_no_deps(self, buf):
        w = StreamWindow(strict_fifo=True)
        assert w.deps_for(make_action([wr(buf, 0, 8)])) == []

    def test_strict_skips_completed_tail(self, buf):
        w = StreamWindow(strict_fifo=True)
        a = make_action([wr(buf, 0, 8)])
        w.add(a)
        a.completion.complete()
        b = make_action([wr(buf, 8, 8)])
        assert w.deps_for(b) == []


class TestRetirementEdges:
    """Scheduler-driven retirement: completions arrive in any order and
    the window's live view must stay exact through every interleaving."""

    def test_retire_out_of_order_keeps_remaining_deps(self, buf):
        w = StreamWindow()
        a = make_action([wr(buf, 0, 8)])
        b = make_action([wr(buf, 8, 8)])
        c = make_action([wr(buf, 16, 8)])
        for x in (a, b, c):
            w.add(x)
        # The middle action completes first: a and c stay live.
        w.retire(b)
        probe = make_action([rd(buf, 0, 24)])
        assert w.deps_for(probe) == [a, c]
        assert w.in_flight == 2

    def test_retire_is_idempotent(self, buf):
        w = StreamWindow()
        a = make_action([wr(buf, 0, 8)])
        w.add(a)
        w.retire(a)
        w.retire(a)
        assert w.retired_count == 1
        assert w.in_flight == 0

    def test_window_full_of_retired_entries_imposes_nothing(self, buf):
        w = StreamWindow()
        actions = [make_action([wr(buf, i * 8, 8)]) for i in range(5)]
        for x in actions:
            w.add(x)
        for x in actions:
            w.retire(x)
        probe = make_action([wr(buf, 0, 40)])
        assert w.deps_for(probe) == []
        assert w.in_flight == 0
        assert w.enqueued_count == 5
        assert w.retired_count == 5

    def test_strict_fifo_retire_out_of_order_falls_back_to_live_tail(self, buf):
        w = StreamWindow(strict_fifo=True)
        a = make_action([wr(buf, 0, 8)])
        b = make_action([wr(buf, 8, 8)])
        for x in (a, b):
            w.add(x)
        # The newest completes first; the chain's guarantee holds
        # because a strict stream's predecessor edges are transitive:
        # the next action orders after the newest *live* predecessor.
        w.retire(b)
        probe = make_action([wr(buf, 16, 8)])
        assert w.deps_for(probe) == [a]

    def test_barrier_interleaved_with_retirement(self, buf):
        w = StreamWindow()
        old = make_action([wr(buf, 0, 100)])
        w.add(old)
        bar = make_action([], barrier=True)
        w.add(bar)
        # The barrier completes (and retires) while `old` is still in
        # flight: the cut-off is gone, so the probe must order after
        # the still-live conflicting predecessor directly.
        w.retire(bar)
        probe = make_action([rd(buf, 0, 100)])
        assert w.deps_for(probe) == [old]

    def test_retired_barrier_with_nothing_older_leaves_no_deps(self, buf):
        w = StreamWindow()
        bar = make_action([], barrier=True)
        w.add(bar)
        w.retire(bar)
        probe = make_action([rd(buf, 0, 8)])
        assert w.deps_for(probe) == []

    def test_lazy_drop_and_explicit_retire_count_once(self, buf):
        w = StreamWindow()
        a = make_action([wr(buf, 0, 8)])
        w.add(a)
        a.completion.complete()
        # The lazy scan drops the completed entry...
        assert w.deps_for(make_action([rd(buf, 0, 8)])) == []
        assert w.retired_count == 1
        # ...and a late scheduler retire must not double-count.
        w.retire(a)
        assert w.retired_count == 1


class TestWindowBookkeeping:
    def test_in_flight_is_an_o1_counter(self, buf):
        w = StreamWindow()
        a = make_action([wr(buf, 0, 8)])
        b = make_action([wr(buf, 8, 8)])
        w.add(a)
        w.add(b)
        assert w.in_flight == 2
        w.retire(a)
        assert w.in_flight == 1
        w.retire(b)
        assert w.in_flight == 0

    def test_in_flight_observes_completion_at_next_scan(self, buf):
        # Standalone (no scheduler retiring), a completion is observed
        # lazily: the counter updates when a scan drops the entry, not
        # the instant the event fires.
        w = StreamWindow()
        a = make_action([wr(buf, 0, 8)])
        w.add(a)
        a.completion.complete()
        assert w.in_flight == 1  # not yet observed
        assert w.deps_for(make_action([rd(buf, 0, 8)])) == []
        assert w.in_flight == 0  # the scan dropped it
        assert w.retired_count == 1

    def test_enqueued_count_never_decreases(self, buf):
        w = StreamWindow()
        for i in range(5):
            a = make_action([wr(buf, i * 8, 8)])
            w.add(a)
            a.completion.complete()
            w.retire(a)
        assert w.enqueued_count == 5
        assert w.in_flight == 0

    def test_pending_completions(self, buf):
        w = StreamWindow()
        a = make_action([wr(buf, 0, 8)])
        b = make_action([wr(buf, 8, 8)])
        w.add(a)
        w.add(b)
        a.completion.complete()
        pend: List = w.pending_completions()
        assert pend == [b.completion]

    def test_pending_completions_is_non_mutating(self, buf):
        w = StreamWindow()
        a = make_action([wr(buf, 0, 8)])
        b = make_action([wr(buf, 8, 8)])
        w.add(a)
        w.add(b)
        a.completion.complete()
        assert w.pending_completions() == [b.completion]
        # The completed entry was filtered, not retired.
        assert w.in_flight == 2
        assert w.retired_count == 0
        assert w.pending_completions() == [b.completion]


class TestConflictIndex:
    """The per-buffer conflict index behind RelaxedPolicy."""

    def test_dedup_across_shared_buffers(self):
        space = ProxyAddressSpace()
        b1 = Buffer(space, nbytes=256)
        b2 = Buffer(space, nbytes=256)
        w = StreamWindow()
        both = make_action([wr(b1, 0, 64), wr(b2, 0, 64)])
        w.add(both)
        probe = make_action([rd(b1, 0, 64), rd(b2, 0, 64)])
        # Conflicts via two buckets, appears once, in enqueue order.
        assert w.deps_for(probe) == [both]

    def test_scan_cost_is_per_buffer_not_per_window(self):
        space = ProxyAddressSpace()
        bufs = [Buffer(space, nbytes=64) for _ in range(50)]
        w = StreamWindow()
        for b in bufs:
            w.add(make_action([wr(b, 0, 64)]))
        before = w.scan_candidates
        probe = make_action([rd(bufs[0], 0, 64)])
        assert w.deps_for(probe) == [w._live[min(w._live)]]
        # Only the one bucket was examined, not all 50 live actions.
        assert w.scan_candidates - before == 1

    def test_naive_policy_scans_whole_window(self):
        from repro.core.dependences import NaiveRelaxedPolicy

        space = ProxyAddressSpace()
        bufs = [Buffer(space, nbytes=64) for _ in range(50)]
        w = StreamWindow(policy=NaiveRelaxedPolicy())
        for b in bufs:
            w.add(make_action([wr(b, 0, 64)]))
        before = w.scan_candidates
        probe = make_action([rd(bufs[0], 0, 64)])
        deps = w.deps_for(probe)
        assert len(deps) == 1
        assert w.scan_candidates - before == 50

    def test_bucket_cleanup_on_retire(self, buf):
        w = StreamWindow()
        a = make_action([wr(buf, 0, 8)])
        w.add(a)
        assert w._by_buffer
        w.retire(a)
        assert not w._by_buffer

    def test_barrier_lane_cleanup(self, buf):
        w = StreamWindow()
        bar = make_action([], barrier=True)
        w.add(bar)
        assert bar.seq in w._barriers
        w.retire(bar)
        assert not w._barriers

    def test_completed_barrier_dropped_lazily_by_scan(self, buf):
        w = StreamWindow()
        old = make_action([wr(buf, 0, 8)])
        bar = make_action([], barrier=True)
        w.add(old)
        w.add(bar)
        bar.completion.complete()
        probe = make_action([rd(buf, 0, 8)])
        # The dead barrier is skipped and dropped; the live conflicting
        # predecessor behind it is found directly.
        assert w.deps_for(probe) == [old]
        assert not w._barriers
        assert w.in_flight == 1

    def test_footprint_cached_once(self, buf):
        a = make_action([wr(buf, 0, 8), rd(buf, 16, 8)])
        assert a.footprint == (
            (buf.uid, 0, 8, True),
            (buf.uid, 16, 24, False),
        )

    def test_zero_length_operand_excluded_from_footprint(self, buf):
        a = make_action([Operand(buf, 0, 0, OperandMode.OUT), wr(buf, 8, 8)])
        assert a.footprint == ((buf.uid, 8, 16, True),)


class TestDependencePropertyFuzz:
    """Property: deps_for returns exactly the incomplete, conflicting
    predecessors (cut at the newest conflicting barrier)."""

    def _oracle(self, history, action):
        deps = []
        for prev in reversed(history):
            if prev.completion.is_complete():
                continue
            if prev.conflicts_with(action):
                deps.append(prev)
                if prev.barrier:
                    break
        deps.reverse()
        return deps

    def test_random_histories_match_oracle(self, buf):
        import numpy as np

        rng = np.random.default_rng(7)
        for _trial in range(30):
            w = StreamWindow()
            history = []
            for _ in range(int(rng.integers(1, 20))):
                if rng.random() < 0.1:
                    a = make_action([], barrier=True)
                else:
                    off = int(rng.integers(0, 3500))
                    ln = int(rng.integers(1, 500))
                    mode = (OperandMode.IN if rng.random() < 0.5
                            else OperandMode.OUT)
                    a = make_action([Operand(buf, off, ln, mode)])
                if rng.random() < 0.4 and history:
                    history[int(rng.integers(0, len(history)))].completion.complete()
                probe_off = int(rng.integers(0, 3500))
                probe = make_action(
                    [Operand(buf, probe_off, int(rng.integers(1, 500)),
                             OperandMode.INOUT)]
                )
                assert w.deps_for(probe) == self._oracle(history, probe)
                w.add(a)
                history.append(a)
