"""Tests for the memory subsystem: capacity accounting, coherence
states, transfer elision, and pressure-driven eviction."""

import threading
from dataclasses import replace

import numpy as np
import pytest

from repro import HStreams, make_platform
from repro.core.errors import (
    HStreamsBadArgument,
    HStreamsBusy,
    HStreamsOutOfMemory,
)
from repro.core.memory import CoherenceState
from repro.sim.kernels import dgemm
from repro.sim.platforms import HSW, KNC_7120A, Platform


def tiny_card_platform(card_mb: float = 8.0, host_mb: float = None) -> Platform:
    """An HSW host with one card holding ``card_mb`` MB of RAM."""
    host = HSW if host_mb is None else replace(HSW, ram_gb=host_mb / 1024.0)
    return Platform(
        name="tiny",
        host=host,
        cards=(replace(KNC_7120A, ram_gb=card_mb / 1024.0),),
    )


MB = 1 << 20


class TestCapacityBoundary:
    def test_exactly_at_capacity_succeeds(self):
        hs = HStreams(platform=tiny_card_platform(8), backend="sim", trace=False)
        buf = hs.buffer_create(nbytes=8 * MB, domains=[1])
        assert buf.instantiated_in(1)
        assert hs.domain(1).allocated_bytes == 8 * MB

    def test_one_byte_over_capacity_raises(self):
        hs = HStreams(platform=tiny_card_platform(8), backend="sim", trace=False)
        with pytest.raises(HStreamsOutOfMemory, match="domain 1"):
            hs.buffer_create(nbytes=8 * MB + 1, domains=[1])

    def test_second_buffer_tips_over(self):
        hs = HStreams(platform=tiny_card_platform(8), backend="sim", trace=False)
        hs.buffer_create(nbytes=6 * MB, domains=[1])
        with pytest.raises(HStreamsOutOfMemory):
            hs.buffer_create(nbytes=3 * MB, domains=[1])

    def test_unknown_eviction_policy_rejected(self):
        with pytest.raises(HStreamsBadArgument, match="eviction policy"):
            HStreams(backend="sim", trace=False, eviction_policy="mru")


class TestWrappedHostArrays:
    def test_wrap_is_not_charged_against_host_capacity(self):
        hs = HStreams(
            platform=tiny_card_platform(8, host_mb=1), backend="sim", trace=False
        )
        # 2 MB of caller memory on a 1 MB "host": wrapping aliases the
        # caller's own allocation, so no capacity is consumed.
        arr = np.zeros(2 * MB, dtype=np.uint8)
        buf = hs.wrap(arr)
        assert buf.instantiated_in(0)
        assert hs.domain(0).allocated_bytes == 0

    def test_plain_buffer_still_charged_on_host(self):
        hs = HStreams(platform=make_platform("HSW", 1), backend="sim", trace=False)
        hs.buffer_create(nbytes=4 * MB)
        assert hs.domain(0).allocated_bytes == 4 * MB


class TestLruEviction:
    def make(self, **kw):
        hs = HStreams(
            platform=tiny_card_platform(8),
            backend="sim",
            trace=False,
            eviction_policy="lru",
            **kw,
        )
        hs.register_kernel("gemm", cost_fn=lambda m, n, k, *a: dgemm(m, n, k))
        return hs

    def test_evicts_least_recently_touched_clean_instance(self):
        hs = self.make()
        s = hs.stream_create(domain=1, ncores=61)
        a = hs.buffer_create(nbytes=4 * MB, domains=[1], name="a")
        b = hs.buffer_create(nbytes=4 * MB, domains=[1], name="b")
        hs.enqueue_xfer(s, a)  # a is now the more recently touched
        hs.thread_synchronize()
        c = hs.buffer_create(nbytes=4 * MB, domains=[1], name="c")
        assert not b.instantiated_in(1)  # LRU victim
        assert a.instantiated_in(1)
        assert c.instantiated_in(1)
        assert hs.metrics()["memory"]["evictions"]["pressure"] == 1

    def test_refuses_dirty_instances(self):
        hs = self.make()
        s = hs.stream_create(domain=1, ncores=61)
        a = hs.buffer_create(nbytes=4 * MB, domains=[1], name="a")
        b = hs.buffer_create(nbytes=4 * MB, domains=[1], name="b")
        hs.enqueue_compute(s, "gemm", args=(256, 256, 256, a.all_inout()))
        hs.enqueue_compute(s, "gemm", args=(256, 256, 256, b.all_inout()))
        hs.thread_synchronize()
        # Both instances hold unretrieved sink results: evicting either
        # would silently drop data, so the pressure path must fail.
        with pytest.raises(HStreamsOutOfMemory):
            hs.buffer_create(nbytes=4 * MB, domains=[1], name="c")
        assert a.instantiated_in(1) and b.instantiated_in(1)
        assert hs.metrics()["memory"]["evictions"]["pressure"] == 0

    def test_refuses_busy_instances(self):
        hs = self.make()
        s = hs.stream_create(domain=1, ncores=61)
        a = hs.buffer_create(nbytes=4 * MB, domains=[1], name="a")
        b = hs.buffer_create(nbytes=4 * MB, domains=[1], name="b")
        hs.enqueue_xfer(s, a)  # in flight until the next synchronization
        c = hs.buffer_create(nbytes=4 * MB, domains=[1], name="c")
        assert a.instantiated_in(1)  # busy: spared
        assert not b.instantiated_in(1)  # idle: victim
        assert c.instantiated_in(1)
        hs.thread_synchronize()

    def test_dirty_evictable_again_after_retrieve(self):
        hs = self.make()
        s = hs.stream_create(domain=1, ncores=61)
        a = hs.buffer_create(nbytes=8 * MB, domains=[1], name="a")
        hs.enqueue_compute(s, "gemm", args=(256, 256, 256, a.all_inout()))
        hs.thread_synchronize()
        assert hs.memory.state(a, 1) is CoherenceState.DIRTY
        from repro.core.actions import XferDirection

        hs.enqueue_xfer(s, a, XferDirection.SINK_TO_SRC)
        hs.thread_synchronize()
        assert hs.memory.state(a, 1) is CoherenceState.VALID
        b = hs.buffer_create(nbytes=8 * MB, domains=[1], name="b")
        assert not a.instantiated_in(1)  # retrieved result is safe to drop
        assert b.instantiated_in(1)

    def test_manual_policy_still_fails(self):
        hs = HStreams(platform=tiny_card_platform(8), backend="sim", trace=False)
        hs.buffer_create(nbytes=6 * MB, domains=[1])
        with pytest.raises(HStreamsOutOfMemory):
            hs.buffer_create(nbytes=6 * MB, domains=[1])


class TestCoherenceStates:
    def test_invalid_valid_dirty_cycle(self):
        hs = HStreams(platform=make_platform("HSW", 1), backend="sim", trace=False)
        hs.register_kernel("gemm", cost_fn=lambda m, n, k, *a: dgemm(m, n, k))
        s = hs.stream_create(domain=1, ncores=61)
        buf = hs.buffer_create(nbytes=1 * MB)
        assert hs.memory.state(buf, 1) is CoherenceState.INVALID
        hs.enqueue_xfer(s, buf)
        hs.thread_synchronize()
        assert hs.memory.state(buf, 1) is CoherenceState.VALID
        hs.enqueue_compute(s, "gemm", args=(256, 256, 256, buf.all_inout()))
        hs.thread_synchronize()
        assert hs.memory.state(buf, 1) is CoherenceState.DIRTY
        hs.buffer_evict(buf, 1)
        assert hs.memory.state(buf, 1) is CoherenceState.INVALID

    def test_host_instance_of_wrap_is_valid_from_creation(self):
        hs = HStreams(backend="sim", trace=False)
        buf = hs.wrap(np.zeros(64, dtype=np.uint8))
        assert hs.memory.state(buf, 0) is CoherenceState.VALID


class TestTransferElision:
    def sim(self, **kw):
        hs = HStreams(platform=make_platform("HSW", 1), backend="sim",
                      trace=False, **kw)
        hs.register_kernel("gemm", cost_fn=lambda m, n, k, *a: dgemm(m, n, k))
        return hs

    def run_redundant_sends(self, hs):
        s = hs.stream_create(domain=1, ncores=61)
        buf = hs.buffer_create(nbytes=32 * MB)
        for _ in range(4):
            hs.enqueue_xfer(s, buf)
        hs.thread_synchronize()
        recs = [r for r in hs.metrics()["records"] if r.kind == "xfer"]
        return hs.metrics()["memory"], sum(r.exec_time for r in recs)

    def test_redundant_transfers_cost_no_virtual_time(self):
        m_on, xfer_on = self.run_redundant_sends(self.sim())
        m_off, xfer_off = self.run_redundant_sends(
            self.sim(transfer_elision=False)
        )
        assert m_on["elided_transfers"] == 3
        assert m_on["elided_bytes"] == 3 * 32 * MB
        assert m_off["elided_transfers"] == 0
        assert xfer_on < xfer_off / 2  # 1 real transfer vs 4

    def test_write_blocks_elision(self):
        hs = self.sim()
        s = hs.stream_create(domain=1, ncores=61)
        buf = hs.buffer_create(nbytes=1 * MB)
        hs.enqueue_xfer(s, buf)
        hs.enqueue_compute(s, "gemm", args=(256, 256, 256, buf.all_inout()))
        from repro.core.actions import XferDirection

        ev = hs.enqueue_xfer(s, buf, XferDirection.SINK_TO_SRC)
        assert not ev.action.elided  # host copy is stale: must move
        hs.thread_synchronize()
        ev2 = hs.enqueue_xfer(s, buf, XferDirection.SINK_TO_SRC)
        assert ev2.action.elided  # now the host is current again
        hs.thread_synchronize()

    def test_thread_backend_numerics_identical_with_elision(self):
        def run(elide: bool) -> np.ndarray:
            hs = HStreams(platform=make_platform("HSW", 1), backend="thread",
                          trace=False, transfer_elision=elide)
            hs.register_kernel("scale", fn=lambda x: x.__imul__(3.0))
            s = hs.stream_create(domain=1, ncores=4)
            data = np.arange(128, dtype=np.float64)
            buf = hs.wrap(data)
            from repro.core.actions import XferDirection

            hs.enqueue_xfer(s, buf)
            hs.enqueue_xfer(s, buf)  # redundant: elidable
            hs.enqueue_compute(s, "scale", args=(buf.all_inout(),))
            hs.enqueue_xfer(s, buf, XferDirection.SINK_TO_SRC)
            hs.enqueue_xfer(s, buf, XferDirection.SINK_TO_SRC)  # redundant
            hs.thread_synchronize()
            hs.fini()
            return data

        on, off = run(True), run(False)
        np.testing.assert_array_equal(on, off)
        np.testing.assert_array_equal(on, np.arange(128) * 3.0)

    def test_external_host_write_defeats_elision(self):
        hs = self.sim()
        s = hs.stream_create(domain=1, ncores=61)
        buf = hs.buffer_create(nbytes=1 * MB)
        hs.enqueue_xfer(s, buf)
        hs.memory.note_external_host_write(buf)
        ev = hs.enqueue_xfer(s, buf)
        assert not ev.action.elided  # the staged bytes must ship
        hs.thread_synchronize()


class TestBufferPoolInterplay:
    def test_eviction_recycles_chunks_through_the_pool(self):
        hs = HStreams(platform=make_platform("HSW", 1), backend="sim", trace=False)
        a = hs.buffer_create(nbytes=4 * MB, domains=[1])
        before = hs.metrics()["memory"]["pool"]
        assert before["fresh_allocations"] > 0
        hs.buffer_evict(a, 1)  # chunks return to the free list
        hs.buffer_create(nbytes=4 * MB, domains=[1])
        after = hs.metrics()["memory"]["pool"]
        assert after["recycled_allocations"] > before["recycled_allocations"]
        assert after["fresh_allocations"] == before["fresh_allocations"]
        assert 0.0 < after["hit_rate"] <= 1.0

    def test_pool_block_absent_outside_sim(self):
        hs = HStreams(backend="thread", trace=False)
        assert hs.metrics()["memory"]["pool"] is None
        hs.fini()


class TestBusyDestroy:
    def test_sim_destroy_in_flight_raises_busy(self):
        hs = HStreams(platform=make_platform("HSW", 1), backend="sim", trace=False)
        s = hs.stream_create(domain=1, ncores=61)
        buf = hs.buffer_create(nbytes=1 * MB, domains=[1])
        hs.enqueue_xfer(s, buf)  # enqueued, virtual time not yet run
        with pytest.raises(HStreamsBusy, match="in-flight"):
            hs.buffer_destroy(buf)
        hs.thread_synchronize()
        hs.buffer_destroy(buf)  # drained: destroy is legal now
        assert buf not in hs.buffers

    def test_thread_destroy_in_flight_raises_busy(self):
        hs = HStreams(platform=make_platform("HSW", 1), backend="thread",
                      trace=False)
        release = threading.Event()
        hs.register_kernel("hold", fn=lambda x: release.wait(5.0))
        s = hs.stream_create(domain=1, ncores=4)
        buf = hs.buffer_create(nbytes=64)
        hs.enqueue_compute(s, "hold", args=(buf.all_inout(),))
        try:
            with pytest.raises(HStreamsBusy, match="destroy"):
                hs.buffer_destroy(buf)
        finally:
            release.set()
        hs.thread_synchronize()
        hs.buffer_destroy(buf)
        hs.fini()

    def test_destroy_releases_capacity(self):
        hs = HStreams(platform=make_platform("HSW", 1), backend="sim", trace=False)
        buf = hs.buffer_create(nbytes=4 * MB, domains=[1])
        assert hs.domain(1).allocated_bytes == 4 * MB
        hs.buffer_destroy(buf)
        assert hs.domain(1).allocated_bytes == 0


class TestStreamDestroyObservability:
    def test_destroyed_stream_stats_survive_in_metrics(self):
        hs = HStreams(platform=make_platform("HSW", 1), backend="sim", trace=False)
        hs.register_kernel("gemm", cost_fn=lambda m, n, k, *a: dgemm(m, n, k))
        s = hs.stream_create(domain=1, ncores=61)
        buf = hs.buffer_create(nbytes=1 * MB)
        hs.enqueue_xfer(s, buf)
        hs.enqueue_compute(s, "gemm", args=(256, 256, 256, buf.all_inout()))
        hs.stream_destroy(s)
        stats = hs.metrics()["streams"][s.id]
        assert stats["destroyed"] is True
        assert stats["enqueued"] == 2
        assert stats["completed"] == 2  # destroy drained the stream first

    def test_live_stream_reports_not_destroyed(self):
        hs = HStreams(platform=make_platform("HSW", 1), backend="sim", trace=False)
        s = hs.stream_create(domain=1, ncores=61)
        assert hs.metrics()["streams"][s.id]["destroyed"] is False

    def test_capture_records_stream_destroy(self):
        from repro.analysis.capture import StreamEvent

        hs = HStreams(platform=make_platform("HSW", 1), capture_only=True,
                      trace=False)
        s = hs.stream_create(domain=1, ncores=61)
        hs.stream_destroy(s)
        kinds = [
            e.kind for e in hs.capture.trace if isinstance(e, StreamEvent)
        ]
        assert kinds == ["create", "destroy"]


class TestMemoryMetricsShape:
    def test_memory_block_keys(self):
        hs = HStreams(platform=make_platform("HSW", 1), backend="sim", trace=False)
        m = hs.metrics()["memory"]
        assert set(m) == {
            "eviction_policy",
            "transfer_elision",
            "elided_transfers",
            "elided_bytes",
            "aliased_transfers",
            "evictions",
            "domains",
            "pool",
        }
        assert m["eviction_policy"] == "manual"
        assert m["transfer_elision"] is True
        assert set(m["domains"]) == {0, 1}
        assert {"allocated_bytes", "capacity_bytes", "instances"} == set(
            m["domains"][1]
        )

    def test_aliased_transfer_counter(self):
        hs = HStreams(platform=make_platform("HSW", 1), backend="sim", trace=False)
        s0 = hs.stream_create(domain=0, ncores=4)
        buf = hs.buffer_create(nbytes=1 * MB)
        hs.enqueue_xfer(s0, buf)  # host-as-target: aliased, not elided
        hs.thread_synchronize()
        m = hs.metrics()["memory"]
        assert m["aliased_transfers"] == 1
        assert m["elided_transfers"] == 0
