"""Tests for buffers and the proxy address space."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.buffer import Buffer, ProxyAddressSpace
from repro.core.actions import OperandMode
from repro.core.errors import (
    HStreamsBadArgument,
    HStreamsNotFound,
    HStreamsOutOfRange,
)


class TestProxyAddressSpace:
    def test_allocations_do_not_overlap(self):
        space = ProxyAddressSpace()
        b1 = Buffer(space, nbytes=100)
        b2 = Buffer(space, nbytes=100)
        assert b2.proxy_base >= b1.proxy_base + 100

    def test_bases_are_aligned(self):
        space = ProxyAddressSpace()
        for size in [1, 7, 63, 65, 1000]:
            assert Buffer(space, nbytes=size).proxy_base % 64 == 0

    def test_resolve_finds_containing_buffer(self):
        space = ProxyAddressSpace()
        b1 = Buffer(space, nbytes=128)
        b2 = Buffer(space, nbytes=128)
        buf, off = space.resolve(b2.proxy_base + 17)
        assert buf is b2 and off == 17
        buf, off = space.resolve(b1.proxy_base)
        assert buf is b1 and off == 0

    def test_resolve_outside_any_buffer_raises(self):
        space = ProxyAddressSpace()
        Buffer(space, nbytes=64)
        with pytest.raises(HStreamsOutOfRange):
            space.resolve(1)  # below every base
        with pytest.raises(HStreamsOutOfRange):
            space.resolve(10**12)

    def test_resolve_in_alignment_gap_raises(self):
        space = ProxyAddressSpace()
        b1 = Buffer(space, nbytes=10)  # occupies [base, base+10), pad to 64
        Buffer(space, nbytes=10)
        with pytest.raises(HStreamsOutOfRange):
            space.resolve(b1.proxy_base + 32)  # in b1's padding, not b1

    def test_unregister_then_resolve_raises_not_found(self):
        # A destroyed buffer's range is a tombstone: resolving into it
        # names the buffer (HStreamsNotFound), unlike addresses that
        # never belonged to any buffer (HStreamsOutOfRange).
        space = ProxyAddressSpace()
        b = Buffer(space, nbytes=64, name="victim")
        addr = b.proxy_base
        b.destroy()
        with pytest.raises(HStreamsNotFound, match="victim"):
            space.resolve(addr)
        with pytest.raises(HStreamsNotFound, match="destroyed"):
            space.resolve(addr + 63)  # last byte of the dead range

    def test_resolve_never_registered_stays_out_of_range(self):
        space = ProxyAddressSpace()
        b = Buffer(space, nbytes=64)
        b.destroy()
        with pytest.raises(HStreamsOutOfRange):
            space.resolve(b.proxy_base + 64)  # past the dead range
        with pytest.raises(HStreamsOutOfRange):
            space.resolve(10**12)

    def test_resolve_live_buffer_unaffected_by_neighbor_destroy(self):
        space = ProxyAddressSpace()
        b1 = Buffer(space, nbytes=64)
        b2 = Buffer(space, nbytes=64)
        b1.destroy()
        buf, off = space.resolve(b2.proxy_base + 5)
        assert buf is b2 and off == 5

    def test_double_destroy_raises(self):
        space = ProxyAddressSpace()
        b = Buffer(space, nbytes=64)
        b.destroy()
        with pytest.raises(HStreamsNotFound):
            b.destroy()

    def test_zero_size_rejected(self):
        with pytest.raises(HStreamsBadArgument):
            Buffer(ProxyAddressSpace(), nbytes=0)

    def test_len_counts_registered(self):
        space = ProxyAddressSpace()
        b1 = Buffer(space, nbytes=8)
        Buffer(space, nbytes=8)
        assert len(space) == 2
        b1.destroy()
        assert len(space) == 1

    @given(sizes=st.lists(st.integers(1, 4096), min_size=1, max_size=30))
    def test_property_every_interior_byte_resolves(self, sizes):
        space = ProxyAddressSpace()
        bufs = [Buffer(space, nbytes=s) for s in sizes]
        for b in bufs:
            for off in {0, b.nbytes // 2, b.nbytes - 1}:
                got, goff = space.resolve(b.proxy_base + off)
                assert got is b and goff == off


class TestBufferWrapping:
    def test_wrap_shares_memory(self):
        space = ProxyAddressSpace()
        arr = np.arange(10.0)
        b = Buffer(space, nbytes=0, host_array=arr)
        assert b.nbytes == 80
        b.instances[0] = arr.view(np.uint8).reshape(-1)
        view = b.view(0, dtype=np.float64)
        view[0] = 42.0
        assert arr[0] == 42.0

    def test_non_contiguous_wrap_rejected(self):
        space = ProxyAddressSpace()
        arr = np.zeros((4, 4))[:, ::2]
        with pytest.raises(HStreamsBadArgument):
            Buffer(space, nbytes=0, host_array=arr)


class TestBufferViews:
    def _instantiated(self, nbytes=256):
        space = ProxyAddressSpace()
        b = Buffer(space, nbytes=nbytes)
        b.instances[0] = np.zeros(nbytes, dtype=np.uint8)
        b.instances[1] = np.zeros(nbytes, dtype=np.uint8)
        return b

    def test_view_shapes(self):
        b = self._instantiated(8 * 6)
        v = b.view(0, shape=(2, 3))
        assert v.shape == (2, 3) and v.dtype == np.float64

    def test_views_of_different_domains_are_independent(self):
        b = self._instantiated()
        b.view(0)[0] = 1.0
        assert b.view(1)[0] == 0.0

    def test_view_out_of_range(self):
        b = self._instantiated(64)
        with pytest.raises(HStreamsOutOfRange):
            b.view(0, offset=60, nbytes=16)

    def test_view_of_missing_domain(self):
        b = self._instantiated()
        with pytest.raises(HStreamsNotFound):
            b.view(7)

    def test_instance_array_of_sim_only_instance(self):
        b = self._instantiated()
        b.instances[2] = None  # sim placeholder
        with pytest.raises(HStreamsNotFound):
            b.instance_array(2)

    def test_instantiated_in(self):
        b = self._instantiated()
        assert b.instantiated_in(0) and not b.instantiated_in(5)


class TestOperandHelpers:
    def test_all_variants(self):
        b = Buffer(ProxyAddressSpace(), nbytes=128)
        assert b.all_in().mode is OperandMode.IN
        assert b.all_out().mode is OperandMode.OUT
        assert b.all_inout().mode is OperandMode.INOUT
        assert b.all().nbytes == 128

    def test_range(self):
        b = Buffer(ProxyAddressSpace(), nbytes=128)
        op = b.range(8, 16, OperandMode.IN)
        assert (op.offset, op.nbytes, op.mode) == (8, 16, OperandMode.IN)

    def test_tensor_computes_nbytes(self):
        b = Buffer(ProxyAddressSpace(), nbytes=8 * 12)
        op = b.tensor((3, 4))
        assert op.nbytes == 96
        assert op.shape == (3, 4)
        assert op.dtype == np.float64

    def test_tensor_float32(self):
        b = Buffer(ProxyAddressSpace(), nbytes=1024)
        op = b.tensor((16,), dtype=np.float32)
        assert op.nbytes == 64

    def test_tensor_overflow_rejected(self):
        b = Buffer(ProxyAddressSpace(), nbytes=64)
        with pytest.raises(HStreamsBadArgument):
            b.tensor((100, 100))
