"""Unit tests for smaller pieces: config validation, error codes,
events, kernel specs, stream invariants, sim-backend accounting."""

import numpy as np
import pytest

from repro import HStreams, RuntimeConfig, make_platform
from repro.core import errors
from repro.core.errors import HStreamsBadArgument
from repro.core.runtime import KernelSpec
from repro.core.stream import Stream
from repro.sim.kernels import dgemm


class TestRuntimeConfig:
    def test_defaults_valid(self):
        RuntimeConfig()

    @pytest.mark.parametrize("field", [
        "enqueue_overhead_s", "transfer_overhead_s", "invoke_overhead_s",
        "sync_overhead_s", "alloc_latency_s", "alloc_per_mb_s",
    ])
    def test_negative_overheads_rejected(self, field):
        with pytest.raises(ValueError):
            RuntimeConfig(**{field: -1.0})

    def test_jitter_bounds(self):
        with pytest.raises(ValueError):
            RuntimeConfig(jitter=-0.1)
        with pytest.raises(ValueError):
            RuntimeConfig(jitter_prob=1.5)
        with pytest.raises(ValueError):
            RuntimeConfig(pool_chunk_bytes=0)

    def test_alloc_cost_formula(self):
        cfg = RuntimeConfig(alloc_latency_s=1e-4, alloc_per_mb_s=1e-5)
        assert cfg.alloc_cost(2 << 20) == pytest.approx(1e-4 + 2e-5)

    def test_zero_overhead_copy(self):
        z = RuntimeConfig(jitter=0.5).zero_overhead()
        assert z.enqueue_overhead_s == 0.0
        assert z.transfer_overhead_s == 0.0
        assert z.jitter == 0.0


class TestErrorCodes:
    def test_hierarchy(self):
        assert issubclass(errors.HStreamsTimedOut, errors.HStreamsError)
        assert issubclass(errors.HStreamsOutOfMemory, errors.HStreamsError)

    def test_codes_mirror_hstr_result(self):
        assert errors.HStreamsTimedOut.code == "HSTR_RESULT_TIME_OUT_REACHED"
        assert errors.HStreamsNotFound.code == "HSTR_RESULT_NOT_FOUND"
        assert errors.HStreamsOutOfMemory.code == "HSTR_RESULT_OUT_OF_MEMORY"
        # Every error class carries a distinct code (__all__ also
        # exports the transient-marking helpers, which have none).
        classes = [
            getattr(errors, name)
            for name in errors.__all__
            if isinstance(getattr(errors, name), type)
        ]
        codes = {cls.code for cls in classes}
        assert len(codes) == len(classes)


class TestKernelSpec:
    def test_needs_something(self):
        with pytest.raises(HStreamsBadArgument):
            KernelSpec("empty")

    def test_fn_only_and_cost_only(self):
        KernelSpec("a", fn=lambda: None)
        KernelSpec("b", cost_fn=lambda: None)


class TestStreamInvariants:
    def test_empty_mask_rejected(self):
        with pytest.raises(HStreamsBadArgument):
            Stream(0, 1, ())

    def test_duplicate_cpus_rejected(self):
        with pytest.raises(HStreamsBadArgument):
            Stream(0, 1, (1, 1, 2))

    def test_host_as_target_flag(self):
        assert Stream(0, 0, (0, 1)).host_as_target
        assert not Stream(1, 2, (0, 1)).host_as_target

    def test_lane_and_width(self):
        s = Stream(3, 1, (4, 5, 6), name="mine")
        assert s.width == 3
        assert s.lane == "d1:mine"


class TestEvents:
    def test_wait_and_poll(self):
        hs = HStreams(platform=make_platform("HSW", 1), backend="thread", trace=False)
        hs.register_kernel("noop", fn=lambda: None)
        s = hs.stream_create(domain=1, ncores=4)
        ev = hs.enqueue_compute(s, "noop")
        ev.wait()
        assert ev.is_complete()
        assert ev.timestamp is not None
        hs.fini()

    def test_timestamps_order_matches_dependences(self):
        hs = HStreams(platform=make_platform("HSW", 1), backend="sim", trace=False)
        hs.register_kernel("gemm", cost_fn=lambda m, n, k, *a: dgemm(m, n, k))
        s = hs.stream_create(domain=1, ncores=61)
        b = hs.buffer_create(nbytes=1 << 20, domains=[1])
        e1 = hs.enqueue_compute(s, "gemm", args=(512, 512, 512, b.all_inout()))
        e2 = hs.enqueue_compute(s, "gemm", args=(512, 512, 512, b.all_inout()))
        hs.thread_synchronize()
        assert e1.timestamp < e2.timestamp


class TestSimBackendAccounting:
    def test_init_cost_counts_card_spawns(self):
        hs = HStreams(platform=make_platform("HSW", 2), backend="sim", trace=False)
        assert hs.backend.init_cost_s == pytest.approx(0.5)  # 2 x 0.25 s

    def test_alloc_blocked_accumulates(self):
        cfg = RuntimeConfig(use_buffer_pool=False)
        hs = HStreams(platform=make_platform("HSW", 1), backend="sim", config=cfg)
        assert hs.backend.alloc_blocked_s == 0.0
        hs.buffer_create(nbytes=8 << 20, domains=[1])
        assert hs.backend.alloc_blocked_s == pytest.approx(cfg.alloc_cost(8 << 20))

    def test_link_accounting_via_fabric(self):
        hs = HStreams(platform=make_platform("HSW", 1), backend="sim", trace=False)
        s = hs.stream_create(domain=1, ncores=4)
        b = hs.buffer_create(nbytes=1 << 20, domains=[1])
        hs.enqueue_xfer(s, b)
        hs.thread_synchronize()
        assert hs.backend.links[1].h2d.bytes_moved == 1 << 20
        assert hs.backend.fabric.dma_count == 1


class TestOpenMPSizedData:
    def test_sized_stand_in_maps_without_real_memory(self):
        from repro.models.openmp import OpenMPRuntime

        class Blob:
            nbytes = 1 << 20

        omp = OpenMPRuntime(platform=make_platform("HSW", 1), backend="sim",
                            spec="4.5", trace=False)
        blob = Blob()
        t0 = omp.elapsed()
        omp.target_enter_data(0, [blob])
        elapsed = omp.elapsed() - t0
        wire = (1 << 20) / 6.8e9
        assert elapsed > wire  # a real transfer happened
        omp.fini()

    def test_same_object_maps_to_same_buffer(self):
        from repro.models.openmp import OpenMPRuntime

        class Blob:
            nbytes = 64

        omp = OpenMPRuntime(backend="sim", trace=False)
        blob = Blob()
        assert omp._buffer_for(blob) is omp._buffer_for(blob)
        omp.fini()


class TestOmpSsCholeskyValidation:
    def test_invalid_n(self):
        from repro.ompss.cholesky import ompss_cholesky

        with pytest.raises(ValueError):
            ompss_cholesky(0)

    def test_small_run_counts_tasks(self):
        from repro.ompss.cholesky import ompss_cholesky

        res = ompss_cholesky(3000, tile=1000)
        # T=3: potrf 3, trsm 3, syrk 3, gemm 1.
        assert res.tasks == 10
        assert res.gflops > 0


class TestStreamDestroy:
    def test_destroy_drains_and_removes(self):
        hs = HStreams(platform=make_platform("HSW", 1), backend="thread",
                      trace=False)
        hs.register_kernel("nap", fn=lambda: __import__("time").sleep(0.05))
        s = hs.stream_create(domain=1, ncores=4)
        ev = hs.enqueue_compute(s, "nap")
        hs.stream_destroy(s)  # drains first
        assert ev.is_complete()
        assert s not in hs.streams
        hs.fini()

    def test_double_destroy_raises(self):
        from repro.core.errors import HStreamsNotFound

        hs = HStreams(backend="thread", trace=False)
        s = hs.stream_create(domain=1, ncores=4)
        hs.stream_destroy(s)
        with pytest.raises(HStreamsNotFound):
            hs.stream_destroy(s)
        hs.fini()

    def test_destroy_on_sim_backend(self):
        hs = HStreams(platform=make_platform("HSW", 1), backend="sim",
                      trace=False)
        hs.register_kernel("gemm", cost_fn=lambda m, n, k, *a: dgemm(m, n, k))
        s = hs.stream_create(domain=1, ncores=30)
        b = hs.buffer_create(nbytes=1 << 16, domains=[1])
        hs.enqueue_compute(s, "gemm", args=(256, 256, 256, b.all_inout()))
        hs.stream_destroy(s)
        assert s not in hs.streams
        # Other streams keep working after a destroy.
        s2 = hs.stream_create(domain=1, ncores=30)
        hs.enqueue_compute(s2, "gemm", args=(256, 256, 256, b.all_inout()))
        hs.thread_synchronize()


class TestReadOnlyBuffers:
    """Paper §II: buffers declare usage properties like read-only."""

    def test_write_operand_rejected(self):
        from repro.core.actions import OperandMode
        from repro.core.errors import HStreamsBadArgument

        hs = HStreams(platform=make_platform("HSW", 1), backend="thread",
                      trace=False)
        hs.register_kernel("k", fn=lambda *a: None)
        s = hs.stream_create(domain=1, ncores=4)
        ro = hs.buffer_create(nbytes=64, read_only=True)
        with pytest.raises(HStreamsBadArgument, match="read-only"):
            hs.enqueue_compute(s, "k", args=(ro.all(OperandMode.OUT),))
        with pytest.raises(HStreamsBadArgument):
            hs.enqueue_compute(s, "k", args=(ro,))  # bare buffer = INOUT
        hs.fini()

    def test_read_operand_allowed(self):
        from repro.core.actions import OperandMode

        hs = HStreams(platform=make_platform("HSW", 1), backend="thread",
                      trace=False)
        hs.register_kernel("k", fn=lambda a: None)
        s = hs.stream_create(domain=1, ncores=4)
        ro = hs.buffer_create(nbytes=64, read_only=True)
        hs.enqueue_compute(s, "k", args=(ro.all(OperandMode.IN),))
        hs.thread_synchronize()
        hs.fini()

    def test_broadcast_input_pattern(self):
        """The matmul's A tiles are the natural read-only citizens:
        transfers still work (they write the *instance*, not the data
        semantics the property protects)."""
        hs = HStreams(platform=make_platform("HSW", 1), backend="sim",
                      trace=False)
        ro = hs.buffer_create(nbytes=1 << 16, read_only=True)
        s = hs.stream_create(domain=1, ncores=8)
        hs.enqueue_xfer(s, ro)  # broadcasting a read-only buffer is fine
        hs.thread_synchronize()


class TestRuntimeStats:
    def test_counters_track_action_kinds(self):
        hs = HStreams(platform=make_platform("HSW", 1), backend="sim",
                      trace=False)
        hs.register_kernel("gemm", cost_fn=lambda m, n, k, *a: dgemm(m, n, k))
        s1 = hs.stream_create(domain=1, ncores=30)
        s2 = hs.stream_create(domain=1, ncores=30)
        b = hs.buffer_create(nbytes=1 << 20, domains=[1])
        ev = hs.enqueue_xfer(s1, b)
        hs.enqueue_compute(s1, "gemm", args=(256, 256, 256, b.all_inout()))
        hs.event_stream_wait(s2, [ev])
        hs.thread_synchronize()
        assert hs.stats["computes"] == 1
        assert hs.stats["transfers"] == 1
        assert hs.stats["syncs"] == 1
        assert hs.stats["bytes_transferred"] == 1 << 20
