"""Planned collectives: validation, byte identity with the naive loop,
schedule semantics, fault-policy cells, and capture/replay.

The acceptance bar for the collectives layer is that a planned schedule
is *only* a schedule: whatever route the chunks take, every destination
ends up with exactly the bytes the naive N-transfer loop would have
delivered (thread backend, real memory), pipelined multicast genuinely
beats the serial loop in virtual time (sim backend), failures inside a
collective follow the runtime's failure policies like any other action,
and a collective captured in ``capture_graph()`` replays with zero
dependence-scan comparisons.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    FaultPlan,
    FaultSpec,
    HStreams,
    InjectedFault,
    make_platform,
)
from repro.core.collectives import REDUCE_OPS, SCHEDULES
from repro.core.errors import HStreamsBadArgument
from repro.core.faults import inject_faults
from repro.sim.platforms import make_cluster_platform

PEER_SCHEDULES = ("tree", "ring", "multicast")


def cluster(backend, nnodes=3, **kw):
    """A peer-routable fabric runtime (every schedule is legal)."""
    return HStreams(
        platform=make_cluster_platform(nnodes=nnodes), backend=backend,
        trace=False, **kw,
    )


def pcie(backend, ncards=2, **kw):
    """A classic PCIe-card runtime (host-rooted links only)."""
    return HStreams(
        platform=make_platform("HSW", ncards), backend=backend,
        trace=False, **kw,
    )


def payload(n, seed=7):
    return np.random.default_rng(seed).integers(0, 256, n, dtype=np.uint8)


def sink_bytes(buf, domain):
    return np.asarray(buf.instance_array(domain))


# -- argument validation -------------------------------------------------------


class TestValidation:
    def test_unknown_schedule_rejected(self):
        hs = cluster("sim")
        buf = hs.buffer_create(nbytes=64)
        with pytest.raises(HStreamsBadArgument, match="unknown schedule"):
            hs.broadcast(buf, [1], schedule="bogus")
        hs.fini()

    @pytest.mark.parametrize("schedule", PEER_SCHEDULES)
    def test_peer_schedule_needs_peer_fabric(self, schedule):
        hs = pcie("sim")
        buf = hs.buffer_create(nbytes=64)
        with pytest.raises(HStreamsBadArgument, match="peer-routable"):
            hs.broadcast(buf, [1, 2], schedule=schedule)
        hs.fini()

    def test_auto_degrades_to_serial_on_pcie(self):
        hs = pcie("sim")
        buf = hs.buffer_create(nbytes=64)
        res = hs.broadcast(buf, [1, 2])
        assert res.schedule == "serial"
        assert res.nchunks == 1  # exactly the naive per-destination xfer
        hs.thread_synchronize()
        hs.fini()

    def test_auto_picks_multicast_on_peer_fabric(self):
        hs = cluster("sim")
        buf = hs.buffer_create(nbytes=1 << 20)
        res = hs.broadcast(buf, [1, 2, 3])
        assert res.schedule == "multicast"
        hs.thread_synchronize()
        hs.fini()

    def test_range_overflow_rejected(self):
        hs = cluster("sim")
        buf = hs.buffer_create(nbytes=64)
        with pytest.raises(HStreamsBadArgument, match="exceeds"):
            hs.broadcast(buf, [1], offset=32, nbytes=64)
        hs.fini()

    def test_host_only_broadcast_is_empty(self):
        hs = cluster("sim")
        buf = hs.buffer_create(nbytes=64)
        res = hs.broadcast(buf, [0])
        assert res.actions == [] and res.arrivals == {}
        hs.fini()

    @pytest.mark.parametrize("name", ["scatter", "gather", "reduce"])
    def test_rooted_collectives_need_offhost_targets(self, name):
        hs = cluster("sim")
        buf = hs.buffer_create(nbytes=64)
        with pytest.raises(HStreamsBadArgument, match="non-host"):
            getattr(hs, name)(buf, [0])
        hs.fini()

    def test_reduce_validates_op_and_itemsize(self):
        hs = cluster("sim")
        buf = hs.buffer_create(nbytes=64)
        with pytest.raises(HStreamsBadArgument, match="unknown reduce op"):
            hs.reduce(buf, [1], op="xor")
        with pytest.raises(HStreamsBadArgument, match="whole number"):
            hs.reduce(buf, [1], nbytes=60, dtype=np.float64, offset=1)
        hs.fini()

    def test_stream_map_domain_mismatch_rejected(self):
        hs = cluster("sim")
        buf = hs.buffer_create(nbytes=64)
        s2 = hs.stream_create(domain=2, ncores=1)
        with pytest.raises(HStreamsBadArgument, match="sinks in domain"):
            hs.broadcast(buf, [1], streams={1: s2})
        hs.fini()

    def test_zero_byte_broadcast_is_inert(self):
        """Zero-length payloads plan nothing: no empty-chunk transfers,
        no arrival events, no dependence footprint in any stream."""
        hs = cluster("sim")
        buf = hs.buffer_create(nbytes=64)
        res = hs.broadcast(buf, [1, 2], nbytes=0)
        assert res.schedule == "serial"  # nothing to pipeline
        assert res.actions == []
        assert res.arrivals == {}
        assert res.nchunks == 0
        res.wait()  # returns immediately: nothing to wait on
        hs.thread_synchronize()
        hs.fini()


# -- byte identity with the naive loop (thread backend) ------------------------


class TestBroadcastBytes:
    @pytest.mark.parametrize("schedule", ["serial"] + list(PEER_SCHEDULES))
    def test_schedule_matches_naive_loop(self, schedule):
        """Every schedule delivers byte-for-byte what the N-xfer loop does."""
        data = payload(4096)
        doms = [1, 2, 3]

        # The reference: one enqueue_xfer per destination.
        hs = cluster("thread")
        ref = hs.wrap(data.copy(), name="ref")
        for d in doms:
            s = hs.stream_create(domain=d, ncores=1)
            hs.enqueue_xfer(s, ref)
        hs.thread_synchronize()
        expect = {d: sink_bytes(ref, d).copy() for d in doms}
        hs.fini()

        hs = cluster("thread")
        buf = hs.wrap(data.copy(), name="bcast")
        res = hs.broadcast(buf, doms, schedule=schedule, chunk_bytes=1000)
        hs.thread_synchronize()
        for d in doms:
            np.testing.assert_array_equal(sink_bytes(buf, d), expect[d])
            np.testing.assert_array_equal(sink_bytes(buf, d), data)
        assert set(res.arrivals) == set(doms)
        hs.fini()

    @given(
        nbytes=st.integers(1, 2048),
        lead=st.integers(0, 128),
        chunk=st.integers(1, 4096),
        schedule=st.sampled_from(SCHEDULES),
        ndoms=st.integers(1, 3),
    )
    @settings(max_examples=15, deadline=None)
    def test_property_any_chunking_is_byte_identical(
        self, nbytes, lead, chunk, schedule, ndoms
    ):
        """Arbitrary range/chunking/schedule: destinations hold exactly
        the host's range, untouched bytes stay zero."""
        total = lead + nbytes + 64
        data = payload(total, seed=nbytes * 31 + lead)
        doms = list(range(1, ndoms + 1))
        hs = cluster("thread")
        buf = hs.wrap(data.copy(), name="prop")
        hs.broadcast(
            buf, doms, offset=lead, nbytes=nbytes, schedule=schedule,
            chunk_bytes=chunk,
        )
        hs.thread_synchronize()
        for d in doms:
            got = sink_bytes(buf, d)
            np.testing.assert_array_equal(
                got[lead : lead + nbytes], data[lead : lead + nbytes]
            )
            assert not got[:lead].any() and not got[lead + nbytes :].any()
        hs.fini()


class TestScatterGatherReduce:
    def test_scatter_slices_partition_the_range(self):
        data = payload(900)
        doms = [1, 2, 3]
        hs = cluster("thread")
        buf = hs.wrap(data.copy(), name="scat")
        res = hs.scatter(buf, doms)
        hs.thread_synchronize()
        pos = 0
        for d in doms:
            n = 300
            got = sink_bytes(buf, d)
            np.testing.assert_array_equal(got[pos : pos + n], data[pos : pos + n])
            # Only this domain's slice arrived; the rest stayed zero.
            assert got.sum() == data[pos : pos + n].sum()
            pos += n
        assert set(res.arrivals) == set(doms)
        hs.fini()

    def test_gather_reassembles_the_range(self):
        doms = [1, 2]
        hs = cluster("thread")
        hs.register_kernel("fill", fn=lambda dst, v: dst.__setitem__(slice(None), v))
        arr = np.zeros(64, dtype=np.float64)  # 512 bytes
        buf = hs.wrap(arr, name="gath")
        streams = {d: hs.stream_create(domain=d, ncores=1) for d in doms}
        from repro.core.actions import OperandMode

        # Each domain produces its own slice, then gather pulls them home.
        hs.enqueue_compute(
            streams[1], "fill", args=(buf.range(0, 256, OperandMode.OUT), 7)
        )
        hs.enqueue_compute(
            streams[2], "fill", args=(buf.range(256, 256, OperandMode.OUT), 9)
        )
        res = hs.gather(buf, doms, streams=streams)
        hs.thread_synchronize()
        assert set(res.arrivals) == set(doms)
        assert (arr[:32] == 7.0).all() and (arr[32:] == 9.0).all()
        hs.fini()

    @pytest.mark.parametrize("op,expect", [("sum", 3.0), ("prod", 1.0),
                                           ("max", 1.0), ("min", 1.0)])
    def test_reduce_combines_every_instance(self, op, expect):
        assert op in REDUCE_OPS
        doms = [1, 2]
        hs = cluster("thread")
        arr = np.ones(64, dtype=np.float64)
        buf = hs.wrap(arr, name="red")
        streams = {d: hs.stream_create(domain=d, ncores=1) for d in doms}
        hs.broadcast(buf, doms, streams=streams)  # instances <- 1.0
        hs.reduce(buf, doms, op=op, streams=streams)
        hs.thread_synchronize()
        np.testing.assert_allclose(arr, expect)
        hs.fini()

    def test_allreduce_leaves_every_domain_with_the_result(self):
        doms = [1, 2]
        hs = cluster("thread")
        arr = np.full(64, 2.0)
        buf = hs.wrap(arr, name="allred")
        streams = {d: hs.stream_create(domain=d, ncores=1) for d in doms}
        hs.broadcast(buf, doms, streams=streams)  # instances <- 2.0
        hs.allreduce(buf, doms, op="sum", streams=streams)
        hs.thread_synchronize()
        np.testing.assert_allclose(arr, 6.0)  # 2 + 2 + 2
        for d in doms:
            inst = sink_bytes(buf, d).view(np.float64)
            np.testing.assert_allclose(inst, 6.0)
        hs.fini()


# -- failure-policy cells ------------------------------------------------------


def arm_chunk_fault(hs, nth, transient=False):
    """Arm the ``nth`` transfer — a mid-collective chunk — to fail."""
    return inject_faults(hs, FaultPlan(specs=(
        FaultSpec(kind="xfer", nth=nth, transient=transient),
    )))


class TestFaultMatrix:
    """A chunk failing mid-collective behaves like any failing action."""

    @pytest.mark.parametrize("backend", ["thread", "sim"])
    def test_poison_cancels_downstream_chunks(self, backend):
        hs = cluster(backend)
        buf = hs.buffer_create(nbytes=1024)
        arm_chunk_fault(hs, nth=5)
        with pytest.raises(InjectedFault, match="injected fault"):
            hs.broadcast(buf, [1, 2, 3], schedule="multicast", chunk_bytes=256)
            hs.thread_synchronize()
        m = hs.metrics()["actions"]
        assert m["failed"] == 1
        assert m["cancelled"] > 0  # later chunks of the chain
        hs.clear_failure()
        hs.fini()

    @pytest.mark.parametrize("backend", ["thread", "sim"])
    def test_fail_fast_refuses_work_after_chunk_failure(self, backend):
        hs = cluster(backend, failure_policy="fail_fast")
        buf = hs.buffer_create(nbytes=1024)
        other = hs.buffer_create(nbytes=64)
        s = hs.stream_create(domain=1, ncores=1)
        arm_chunk_fault(hs, nth=5)
        with pytest.raises(InjectedFault, match="injected fault"):
            hs.broadcast(buf, [1, 2, 3], schedule="multicast", chunk_bytes=256)
            hs.thread_synchronize()
        with pytest.raises(InjectedFault, match="injected fault"):
            hs.enqueue_xfer(s, other)
        hs.clear_failure()
        hs.enqueue_xfer(s, other)
        hs.thread_synchronize()
        hs.fini()

    @pytest.mark.parametrize("backend", ["thread", "sim"])
    def test_retry_recovers_a_transient_chunk(self, backend):
        hs = cluster(backend, failure_policy="retry")
        data = payload(1024)
        if backend == "thread":
            buf = hs.wrap(data.copy(), name="retry")
        else:
            buf = hs.buffer_create(nbytes=1024)
        arm_chunk_fault(hs, nth=5, transient=True)
        res = hs.broadcast(buf, [1, 2, 3], schedule="multicast", chunk_bytes=256)
        hs.thread_synchronize()
        m = hs.metrics()["actions"]
        assert m["retried"] == 1 and m["failed"] == 0
        assert all(ev.is_complete() for ev in res.done)
        if backend == "thread":
            for d in (1, 2, 3):
                np.testing.assert_array_equal(sink_bytes(buf, d), data)
        hs.fini()


# -- capture / replay ----------------------------------------------------------


def scan_comparisons(hs) -> int:
    return sum(
        s["dep_scan_comparisons"] for s in hs.metrics()["streams"].values()
    )


class TestCaptureReplay:
    def test_replay_runs_zero_dependence_scans(self):
        hs = cluster("sim", nnodes=4)
        doms = [1, 2, 3, 4]
        buf = hs.buffer_create(nbytes=1 << 20, domains=doms)
        streams = {d: hs.stream_create(domain=d, ncores=1) for d in doms}
        # Warm-up: same shape, outside the capture scope.
        hs.broadcast(buf, doms, schedule="multicast", streams=streams)
        hs.thread_synchronize()
        with hs.capture_graph() as template:
            res = hs.broadcast(buf, doms, schedule="multicast", streams=streams)
        hs.thread_synchronize()
        scans0 = scan_comparisons(hs)
        hs.replay(template)
        hs.thread_synchronize()
        assert scan_comparisons(hs) - scans0 == 0
        assert len(template.protos) == len(res.actions)
        hs.fini()

    def test_replayed_broadcast_moves_fresh_bytes(self):
        doms = [1, 2]
        hs = cluster("thread", transfer_elision=False)
        arr = payload(2048).copy()
        buf = hs.wrap(arr, name="replayed")
        streams = {d: hs.stream_create(domain=d, ncores=1) for d in doms}
        hs.broadcast(buf, doms, streams=streams, chunk_bytes=512)  # warm-up
        hs.thread_synchronize()
        with hs.capture_graph() as template:
            hs.broadcast(buf, doms, streams=streams, chunk_bytes=512)
        hs.thread_synchronize()
        arr[:] = payload(2048, seed=99)  # new source contents
        hs.replay(template)
        hs.thread_synchronize()
        for d in doms:
            np.testing.assert_array_equal(sink_bytes(buf, d), arr)
        hs.fini()


# -- virtual-time schedule wins and legacy equivalence -------------------------


class TestSimTiming:
    def test_multicast_beats_serial_by_2x_at_16_domains(self):
        """The ISSUE acceptance bar, as a test: pipelined multicast to 16
        domains in at most half the serial loop's virtual time."""
        nnodes, nbytes = 16, 4 << 20
        times = {}
        for sched in ("serial", "multicast"):
            hs = cluster("sim", nnodes=nnodes)
            doms = list(range(1, nnodes + 1))
            buf = hs.buffer_create(nbytes=nbytes, domains=doms)
            hs.thread_synchronize()
            t0 = hs.elapsed()
            hs.broadcast(buf, doms, schedule=sched)
            hs.thread_synchronize()
            times[sched] = hs.elapsed() - t0
            fabric = hs.metrics()["fabric"]
            assert {"bytes_moved", "queue_wait_s", "host_bus_wait_s",
                    "peer_transfers"} <= set(fabric)
            if sched == "serial":
                assert fabric["peer_transfers"] == 0
                assert fabric["host_bus_wait_s"] > 0  # the bus really queues
            else:
                assert fabric["peer_transfers"] > 0
            hs.fini()
        assert times["multicast"] <= 0.5 * times["serial"], times

    def test_serial_broadcast_is_bit_identical_to_the_loop(self):
        """On a legacy PCIe platform the planned serial schedule is the
        naive loop: same virtual time, same transfer stats."""

        def run(use_collective):
            hs = pcie("sim")
            buf = hs.buffer_create(nbytes=1 << 20)
            streams = {d: hs.stream_create(domain=d, ncores=1) for d in (1, 2)}
            t0 = hs.elapsed()
            if use_collective:
                hs.broadcast(buf, [1, 2], streams=streams)
            else:
                for d in (1, 2):
                    hs.enqueue_xfer(streams[d], buf)
            hs.thread_synchronize()
            elapsed = hs.elapsed() - t0
            stats = (hs.stats["transfers"], hs.stats["bytes_transferred"])
            hs.fini()
            return elapsed, stats

        t_loop, s_loop = run(False)
        t_coll, s_coll = run(True)
        assert s_coll == s_loop
        assert t_coll == pytest.approx(t_loop, rel=1e-12)


class TestStats:
    def test_broadcast_bumps_transfer_counters(self):
        hs = cluster("sim")
        buf = hs.buffer_create(nbytes=1024)
        before = (hs.stats["transfers"], hs.stats["bytes_transferred"])
        res = hs.broadcast(buf, [1, 2, 3], schedule="multicast", chunk_bytes=256)
        hs.thread_synchronize()
        xfers = hs.stats["transfers"] - before[0]
        assert xfers == len(res.actions) == 3 * 4  # 3 hops x 4 chunks
        # The chain moves the payload once per hop.
        assert hs.stats["bytes_transferred"] - before[1] == 3 * 1024
        hs.fini()


class TestTinyPayloadChunking:
    """Regression: zero/tiny payloads must not plan empty chunks.

    ``_chunk_ranges`` once returned a single zero-length chunk for
    ``nbytes == 0``, so zero-length collectives admitted real zero-byte
    transfers (instantiating buffers and ordering against unrelated
    work), and an even scatter/gather split with fewer bytes than
    targets emitted empty chunks for the trailing domains.
    """

    @pytest.mark.parametrize("schedule", ["serial"] + list(PEER_SCHEDULES))
    def test_zero_length_broadcast_inert_on_all_schedules(self, schedule):
        hs = cluster("sim")
        buf = hs.buffer_create(nbytes=64)
        res = hs.broadcast(buf, [1, 2, 3], nbytes=0, schedule=schedule)
        assert res.actions == []
        assert res.arrivals == {}
        assert res.nchunks == 0
        # Inert means inert: no sink instances were created (only the
        # host placeholder that buffer_create itself made).
        assert set(buf.instances) <= {0}
        hs.thread_synchronize()
        hs.fini()

    @pytest.mark.parametrize("name", ["scatter", "gather"])
    def test_zero_length_scatter_gather_inert(self, name):
        hs = cluster("sim")
        buf = hs.buffer_create(nbytes=64)
        res = getattr(hs, name)(buf, [1, 2, 3], nbytes=0)
        assert res.actions == [] and res.arrivals == {}
        hs.thread_synchronize()
        hs.fini()

    def test_zero_length_reduce_and_allreduce_inert(self):
        hs = cluster("sim")
        buf = hs.buffer_create(nbytes=64)
        red = hs.reduce(buf, [1, 2], nbytes=0)
        assert red.actions == [] and red.arrivals == {}
        # allreduce must survive its reduce half planning nothing.
        allr = hs.allreduce(buf, [1, 2], nbytes=0)
        assert allr.actions == [] and allr.arrivals == {}
        hs.thread_synchronize()
        hs.fini()

    def test_scatter_fewer_bytes_than_targets_skips_empty_slices(self):
        hs = pcie("thread", ncards=3)
        data = payload(2)
        buf = hs.wrap(data.copy())
        res = hs.scatter(buf, [1, 2, 3])
        hs.thread_synchronize()
        # Two bytes over three domains: domains 1 and 2 get one byte
        # each, domain 3 gets nothing — and no empty-chunk action.
        assert sorted(res.arrivals) == [1, 2]
        assert len(res.actions) == 2
        assert res.nchunks == 1
        assert all(a.nbytes > 0 for a in res.actions)
        assert sink_bytes(buf, 1)[0] == data[0]
        assert sink_bytes(buf, 2)[1] == data[1]
        hs.fini()

    def test_gather_fewer_bytes_than_targets_round_trips(self):
        hs = pcie("thread", ncards=3)
        data = payload(2, seed=11)
        buf = hs.wrap(data.copy())
        hs.broadcast(buf, [1, 2, 3])
        hs.thread_synchronize()
        res = hs.gather(buf, [1, 2, 3])
        hs.thread_synchronize()
        assert sorted(res.arrivals) == [1, 2]
        assert all(a.nbytes > 0 for a in res.actions)
        assert (np.asarray(buf.host_array) == data).all()
        hs.fini()

    def test_zero_length_collective_orders_nothing(self):
        """A zero-length broadcast between two transfers adds no actions
        to the stream window and no transfer/byte counters."""
        hs = cluster("thread")
        buf = hs.wrap(payload(64).copy())
        s = hs.stream_create(domain=1, ncores=1)
        hs.enqueue_xfer(s, buf)
        before = (hs.stats["transfers"], hs.stats["bytes_transferred"])
        res = hs.broadcast(buf, [1], nbytes=0)
        assert res.actions == []
        assert (hs.stats["transfers"], hs.stats["bytes_transferred"]) == before
        hs.enqueue_xfer(s, buf)
        hs.thread_synchronize()
        hs.fini()
