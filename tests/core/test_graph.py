"""Unit tests for the action graph: lifecycle machine, acyclicity,
retirement, and the deadlock probe."""

import pytest

from repro.core.actions import Action, ActionKind
from repro.core.errors import HStreamsInternalError
from repro.core.graph import ActionGraph, ActionNode, ActionRecord, ActionState


def mk_action(label="a"):
    return Action(kind=ActionKind.COMPUTE, stream=None, kernel="k", label=label)


class TestLifecycle:
    def test_happy_path_transitions(self):
        node = ActionNode(mk_action(), t_enqueue=0.0)
        assert node.state is ActionState.ENQUEUED
        node.transition(ActionState.READY)
        node.transition(ActionState.RUNNING)
        node.transition(ActionState.COMPLETE)
        assert node.state.is_terminal

    def test_ready_may_fail_or_complete_directly(self):
        # Trivial executions (aliased transfers) may skip RUNNING.
        node = ActionNode(mk_action(), t_enqueue=0.0)
        node.transition(ActionState.READY)
        node.transition(ActionState.COMPLETE)
        node2 = ActionNode(mk_action(), t_enqueue=0.0)
        node2.transition(ActionState.READY)
        node2.transition(ActionState.FAILED)
        assert node2.state is ActionState.FAILED

    @pytest.mark.parametrize(
        "path",
        [
            (ActionState.RUNNING,),  # enqueued cannot start without readiness
            (ActionState.COMPLETE,),
            (
                ActionState.READY,
                ActionState.RUNNING,
                ActionState.COMPLETE,
                ActionState.FAILED,  # terminal states are final
            ),
            (
                ActionState.READY,
                ActionState.CANCELLED,
                ActionState.READY,  # cancellation is final too
            ),
            (
                ActionState.READY,
                ActionState.RUNNING,
                ActionState.CANCELLED,  # running work cannot be recalled
            ),
        ],
    )
    def test_illegal_transitions_raise(self, path):
        node = ActionNode(mk_action(), t_enqueue=0.0)
        with pytest.raises(HStreamsInternalError):
            for state in path:
                node.transition(state)

    def test_retry_edges_are_legal(self):
        # failure_policy="retry" re-dispatches: RUNNING -> READY, and a
        # fault raised before on_start leaves READY re-entering READY.
        node = ActionNode(mk_action(), t_enqueue=0.0)
        node.transition(ActionState.READY)
        node.transition(ActionState.RUNNING)
        node.transition(ActionState.READY)
        node.transition(ActionState.READY)
        node.transition(ActionState.RUNNING)
        node.transition(ActionState.COMPLETE)

    def test_poison_edges_are_legal(self):
        # A failed producer cancels ENQUEUED (and not-yet-started READY)
        # dependents.
        node = ActionNode(mk_action(), t_enqueue=0.0)
        node.transition(ActionState.CANCELLED)
        assert node.state.is_terminal
        node2 = ActionNode(mk_action(), t_enqueue=0.0)
        node2.transition(ActionState.READY)
        node2.transition(ActionState.CANCELLED)
        assert node2.state.is_terminal

    def test_terminal_flags(self):
        assert ActionState.COMPLETE.is_terminal
        assert ActionState.FAILED.is_terminal
        assert ActionState.CANCELLED.is_terminal
        for s in (ActionState.ENQUEUED, ActionState.READY, ActionState.RUNNING):
            assert not s.is_terminal


class TestRecord:
    def test_stall_decomposition(self):
        node = ActionNode(mk_action(), t_enqueue=1.0)
        node.transition(ActionState.READY)
        node.t_ready = 3.0
        node.transition(ActionState.RUNNING)
        node.t_start = 4.5
        node.transition(ActionState.COMPLETE)
        node.t_end = 7.0
        rec = node.record()
        assert isinstance(rec, ActionRecord)
        assert rec.dep_stall == pytest.approx(2.0)
        assert rec.dispatch_stall == pytest.approx(1.5)
        assert rec.exec_time == pytest.approx(2.5)
        assert rec.total_latency == pytest.approx(6.0)
        assert rec.state == "complete"

    def test_missing_timestamps_backfill(self):
        # A node that never ran still yields a consistent record.
        node = ActionNode(mk_action(), t_enqueue=2.0)
        rec = node.record()
        assert rec.t_ready == rec.t_start == rec.t_end == 2.0
        assert rec.dep_stall == rec.exec_time == 0.0


class TestGraph:
    def test_add_get_pop(self):
        g = ActionGraph()
        a = mk_action("a")
        node = g.add(a, 0.0)
        assert g.get(a) is node
        assert len(g) == 1
        g.pop(node)
        assert g.get(a) is None
        assert len(g) == 0

    def test_double_add_raises(self):
        g = ActionGraph()
        a = mk_action()
        g.add(a, 0.0)
        with pytest.raises(HStreamsInternalError):
            g.add(a, 0.0)

    def test_edge_wires_waiting_and_dependents(self):
        g = ActionGraph()
        na = g.add(mk_action("a"), 0.0)
        nb = g.add(mk_action("b"), 0.0)
        g.add_edge(na, nb)
        assert nb.waiting == 1
        assert na.dependents == [nb]

    def test_back_edge_is_a_cycle_error(self):
        g = ActionGraph()
        na = g.add(mk_action("a"), 0.0)
        nb = g.add(mk_action("b"), 0.0)
        with pytest.raises(HStreamsInternalError, match="cycle"):
            g.add_edge(nb, na)  # newer -> older runs backwards

    def test_self_edge_is_a_cycle_error(self):
        g = ActionGraph()
        na = g.add(mk_action(), 0.0)
        with pytest.raises(HStreamsInternalError, match="cycle"):
            g.add_edge(na, na)

    def test_stalled_empty_when_progress_possible(self):
        g = ActionGraph()
        na = g.add(mk_action("a"), 0.0)
        nb = g.add(mk_action("b"), 0.0)
        g.add_edge(na, nb)
        na.transition(ActionState.READY)  # a can run -> b is not stalled
        assert g.stalled() == []

    def test_stalled_names_blocked_nodes(self):
        g = ActionGraph()
        na = g.add(mk_action("a"), 0.0)
        nb = g.add(mk_action("b"), 0.0)
        g.add_edge(na, nb)
        # a finishes and retires, but b's waiting count was never
        # decremented (simulating a lost completion): true deadlock.
        na.transition(ActionState.READY)
        na.transition(ActionState.COMPLETE)
        g.pop(na)
        assert [n.action.display for n in g.stalled()] == [nb.action.display]

    def test_stalled_empty_graph(self):
        assert ActionGraph().stalled() == []
