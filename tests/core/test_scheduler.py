"""Tests for the backend-agnostic scheduler core: lifecycle metrics,
executor contract, busy eviction, and wait-any under contention."""

import threading
import time

import numpy as np
import pytest

from repro import HStreams, make_platform
from repro.core.dependences import RelaxedPolicy, StrictFifoPolicy
from repro.core.errors import HStreamsBadArgument, HStreamsBusy
from repro.models.cuda_streams import CudaRuntime
from repro.ompss.runtime import OmpSsRuntime
from repro.sim.kernels import dgemm


def sim_runtime(**kw):
    return HStreams(platform=make_platform("HSW", 1), backend="sim", **kw)


def thread_runtime(**kw):
    return HStreams(platform=make_platform("HSW", 1), backend="thread", **kw)


METRIC_KEYS = {
    "actions",
    "lifecycle",
    "by_kind",
    "streams",
    "namespaces",
    "records",
    "memory",
}


class TestMetricsSim:
    def run_chain(self):
        hs = sim_runtime()
        hs.register_kernel("gemm", cost_fn=lambda m, n, k, *a: dgemm(m, n, k))
        s = hs.stream_create(domain=1, ncores=61)
        b = hs.buffer_create(nbytes=1 << 20, domains=[1])
        hs.enqueue_xfer(s, b)
        hs.enqueue_compute(s, "gemm", args=(512, 512, 512, b.all_inout()))
        hs.thread_synchronize()
        return hs, s

    def test_snapshot_structure(self):
        hs, _ = self.run_chain()
        m = hs.metrics()
        # The sim backend additionally reports interconnect counters.
        assert set(m) == METRIC_KEYS | {"fabric"}
        assert m["fabric"]["bytes_moved"] > 0
        assert m["actions"]["enqueued"] == 2
        assert m["actions"]["completed"] == 2
        assert m["actions"]["failed"] == 0
        assert m["actions"]["in_flight"] == 0
        assert len(m["records"]) == 2

    def test_dependent_action_reports_dep_stall(self):
        hs, _ = self.run_chain()
        recs = {r.kind: r for r in hs.metrics()["records"]}
        # The gemm conflicts with the transfer, so it stalls on it in
        # virtual time: ready exactly when the transfer ends.
        assert recs["compute"].dep_stall > 0
        assert recs["compute"].t_ready >= recs["xfer"].t_end
        assert hs.metrics()["lifecycle"]["dep_stall_s"] > 0

    def test_lifecycle_timestamps_ordered(self):
        hs, _ = self.run_chain()
        for r in hs.metrics()["records"]:
            assert r.t_enqueue <= r.t_ready <= r.t_start <= r.t_end
            assert r.state == "complete"

    def test_per_stream_depth_accounting(self):
        hs, s = self.run_chain()
        stats = hs.metrics()["streams"][s.id]
        assert stats["depth"] == 0  # drained
        assert stats["max_depth"] >= 1
        assert stats["enqueued"] == stats["completed"] == 2
        assert stats["lane"] == s.lane

    def test_queue_depth_counters_traced(self):
        hs, s = self.run_chain()
        lanes = hs.tracer.counter_lanes()
        assert f"sched:{s.lane}" in lanes
        series = hs.tracer.counter_series(f"sched:{s.lane}")
        # One sample per enqueue + one per completion, ending at zero.
        assert len(series) == 4
        assert series[-1].value == 0

    def test_by_kind_split(self):
        hs, _ = self.run_chain()
        by_kind = hs.metrics()["by_kind"]
        assert by_kind["compute"]["count"] == 1
        assert by_kind["xfer"]["count"] == 1
        assert by_kind["sync"]["count"] == 0

    def test_metrics_history_bound(self):
        from repro.core.properties import RuntimeConfig

        hs = sim_runtime(config=RuntimeConfig(metrics_history=3), trace=False)
        hs.register_kernel("gemm", cost_fn=lambda m, n, k, *a: dgemm(m, n, k))
        s = hs.stream_create(domain=1, ncores=61)
        b = hs.buffer_create(nbytes=1 << 18, domains=[1])
        for _ in range(8):
            hs.enqueue_compute(s, "gemm", args=(64, 64, 64, b.all_inout()))
        hs.thread_synchronize()
        m = hs.metrics()
        assert len(m["records"]) == 3  # bounded deque keeps the newest
        assert m["actions"]["completed"] == 8  # aggregates are unbounded


class TestMetricsThread:
    def test_same_structure_as_sim(self):
        hs = thread_runtime(trace=False)
        hs.register_kernel("fill", fn=lambda x: x.fill(1.0))
        s = hs.stream_create(domain=1, ncores=4)
        data = np.zeros(8)
        buf = hs.wrap(data)
        hs.enqueue_xfer(s, buf)
        hs.enqueue_compute(s, "fill", args=(buf.tensor((8,)),))
        hs.thread_synchronize()
        m = hs.metrics()
        assert set(m) == METRIC_KEYS
        assert m["actions"]["completed"] == 2
        for r in m["records"]:
            assert r.t_enqueue <= r.t_ready <= r.t_start <= r.t_end
        hs.fini()

    def test_dep_stall_measured_on_real_chain(self):
        hs = thread_runtime(trace=False)
        hs.register_kernel("slow", fn=lambda x: time.sleep(0.05))
        hs.register_kernel("after", fn=lambda x: None)
        s = hs.stream_create(domain=1, ncores=4)
        buf = hs.buffer_create(nbytes=64)
        op = buf.all_inout()
        hs.enqueue_compute(s, "slow", args=(op,))
        ev = hs.enqueue_compute(s, "after", args=(op,))
        hs.thread_synchronize()
        assert ev.record is not None
        assert ev.record.dep_stall >= 0.04  # waited out the sleep
        assert hs.metrics()["lifecycle"]["dep_stall_s"] >= 0.04
        hs.fini()

    def test_completion_event_carries_record(self):
        hs = thread_runtime(trace=False)
        hs.register_kernel("noop", fn=lambda x: None)
        s = hs.stream_create(domain=1, ncores=4)
        buf = hs.buffer_create(nbytes=64)
        ev = hs.enqueue_compute(s, "noop", args=(buf.all_inout(),))
        hs.thread_synchronize()
        assert ev.record.state == "complete"
        assert ev.record.seq == ev.action.seq
        assert ev.timestamp == ev.record.t_end
        hs.fini()

    def test_action_carries_no_backend_private_state(self):
        hs = thread_runtime(trace=False)
        hs.register_kernel("noop", fn=lambda x: None)
        s = hs.stream_create(domain=1, ncores=4)
        buf = hs.buffer_create(nbytes=64)
        ev = hs.enqueue_compute(s, "noop", args=(buf.all_inout(),))
        assert not hasattr(ev.action, "_remaining_deps")
        assert not hasattr(ev.action, "_handle")
        hs.thread_synchronize()
        hs.fini()

    def test_failed_action_poisons_dependents_and_is_recorded(self):
        hs = thread_runtime(trace=False)
        ran = []

        def boom(x):
            raise RuntimeError("kernel exploded")

        hs.register_kernel("boom", fn=boom)
        hs.register_kernel("after", fn=lambda x: ran.append(1))
        s = hs.stream_create(domain=1, ncores=4)
        buf = hs.buffer_create(nbytes=64)
        op = buf.all_inout()
        hs.enqueue_compute(s, "boom", args=(op,))
        dep = hs.enqueue_compute(s, "after", args=(op,))  # depends on boom
        with pytest.raises(RuntimeError, match="kernel exploded"):
            hs.thread_synchronize()
        # The dependent was cancelled (its event still fires so host
        # waits cannot hang), and its kernel never executed.
        assert dep.is_complete()
        assert ran == []
        m = hs.metrics()
        assert m["actions"]["failed"] == 1
        assert m["actions"]["cancelled"] == 1
        assert m["actions"]["completed"] == 0
        states = sorted(r.state for r in m["records"])
        assert states == ["cancelled", "failed"]
        hs.clear_failure()
        hs.fini()


class TestPolicies:
    def test_strict_flag_selects_strict_policy(self):
        hs = sim_runtime(trace=False)
        relaxed = hs.stream_create(domain=1, ncores=4)
        strict = hs.stream_create(domain=1, ncores=4, strict_fifo=True)
        assert isinstance(relaxed.window.policy, RelaxedPolicy)
        assert isinstance(strict.window.policy, StrictFifoPolicy)

    @staticmethod
    def _compute_then_disjoint_xfer(strict):
        hs = sim_runtime(trace=False)
        hs.register_kernel("gemm", cost_fn=lambda m, n, k, *a: dgemm(m, n, k))
        s = hs.stream_create(domain=1, ncores=30, strict_fifo=strict)
        b1 = hs.buffer_create(nbytes=1 << 18, domains=[1])
        b2 = hs.buffer_create(nbytes=1 << 18, domains=[1])
        hs.enqueue_compute(s, "gemm", args=(512, 512, 512, b1.all_inout()))
        hs.enqueue_xfer(s, b2)  # disjoint from the compute's operand
        hs.thread_synchronize()
        recs = sorted(hs.metrics()["records"], key=lambda r: r.seq)
        return recs[0], recs[1]

    def test_strict_stream_serializes_independent_actions_in_sim(self):
        compute, xfer = self._compute_then_disjoint_xfer(strict=True)
        # Disjoint operands, yet strict FIFO: the transfer cannot overtake.
        assert xfer.t_start >= compute.t_end
        assert xfer.dep_stall > 0

    def test_relaxed_stream_overlaps_independent_actions_in_sim(self):
        compute, xfer = self._compute_then_disjoint_xfer(strict=False)
        # Same program under hStreams relaxation: the transfer flows past.
        assert xfer.t_end < compute.t_end

    def test_cross_runtime_event_dependence_rejected(self):
        hs1 = sim_runtime(trace=False)
        hs2 = sim_runtime(trace=False)
        hs1.register_kernel("gemm", cost_fn=lambda m, n, k, *a: dgemm(m, n, k))
        s1 = hs1.stream_create(domain=1, ncores=61)
        s2 = hs2.stream_create(domain=1, ncores=61)
        b = hs1.buffer_create(nbytes=1 << 18, domains=[1])
        foreign = hs1.enqueue_compute(s1, "gemm", args=(256, 256, 256, b.all_inout()))
        with pytest.raises(HStreamsBadArgument, match="cross-runtime"):
            hs2.event_stream_wait(s2, [foreign])
        hs1.thread_synchronize()
        # A *completed* foreign event is harmless: nothing to wait for.
        hs2.event_stream_wait(s2, [foreign])
        hs2.thread_synchronize()


class TestBusyEviction:
    def test_sim_evict_in_flight_raises_busy(self):
        hs = sim_runtime(trace=False)
        s = hs.stream_create(domain=1, ncores=61)
        buf = hs.buffer_create(nbytes=1 << 20, domains=[1])
        hs.enqueue_xfer(s, buf)  # enqueued, virtual time not yet run
        with pytest.raises(HStreamsBusy, match="in-flight"):
            hs.buffer_evict(buf, 1)
        hs.thread_synchronize()
        hs.buffer_evict(buf, 1)  # drained: eviction is legal now
        assert not buf.instantiated_in(1)

    def test_thread_evict_in_flight_raises_busy(self):
        hs = thread_runtime(trace=False)
        release = threading.Event()
        hs.register_kernel("hold", fn=lambda x: release.wait(5.0))
        s = hs.stream_create(domain=1, ncores=4)
        buf = hs.buffer_create(nbytes=64)
        hs.enqueue_compute(s, "hold", args=(buf.all_inout(),))
        try:
            with pytest.raises(HStreamsBusy):
                hs.buffer_evict(buf, 1)
        finally:
            release.set()
        hs.thread_synchronize()
        hs.buffer_evict(buf, 1)
        hs.fini()

    def test_busy_check_scoped_to_domain(self):
        hs = HStreams(platform=make_platform("HSW", 2), backend="sim", trace=False)
        s2 = hs.stream_create(domain=2, ncores=61)
        buf = hs.buffer_create(nbytes=1 << 20, domains=[1, 2])
        hs.enqueue_xfer(s2, buf)  # in flight toward domain 2 only
        hs.buffer_evict(buf, 1)  # domain 1's instance is idle
        assert not buf.instantiated_in(1)
        hs.thread_synchronize()


class TestWaitAnyStress:
    def test_concurrent_wait_any_callers(self):
        """Several host threads wait-any over overlapping event subsets
        while workers complete them out of order."""
        hs = thread_runtime(trace=False)
        hs.register_kernel("nap", fn=lambda x, d: time.sleep(d))
        streams = [hs.stream_create(domain=1, ncores=2) for _ in range(4)]
        bufs = [hs.buffer_create(nbytes=64) for _ in range(4)]
        events = []
        for i in range(24):
            s = streams[i % 4]
            b = bufs[i % 4]
            events.append(
                hs.enqueue_compute(s, "nap", args=(b.all_inout(), 0.001 * (i % 5)))
            )
        failures = []

        def waiter(offset):
            subset = events[offset::3]
            try:
                hs.event_wait(subset, wait_all=False, timeout=30.0)
                if not any(ev.is_complete() for ev in subset):
                    failures.append(f"waiter {offset}: returned with none done")
            except Exception as exc:  # noqa: BLE001 - collected for assert
                failures.append(f"waiter {offset}: {exc!r}")

        threads = [threading.Thread(target=waiter, args=(k,)) for k in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        assert not failures
        hs.thread_synchronize()
        assert all(ev.is_complete() for ev in events)
        hs.fini()


class TestModelPassthroughs:
    def test_cuda_runtime_metrics(self):
        cu = CudaRuntime(backend="sim", trace=False)
        s = cu.stream_create()
        cu.register_kernel("gemm", cost_fn=lambda *a: dgemm(128, 128, 128))
        ptr = cu.malloc(1 << 16)
        cu.launch(s, "gemm", args=(ptr,))
        cu.device_synchronize()
        m = cu.metrics()
        assert set(m) == METRIC_KEYS | {"fabric"}
        assert m["actions"]["completed"] >= 1
        cu.fini()

    def test_ompss_runtime_metrics(self):
        rt = OmpSsRuntime(model="hstreams", backend="sim", trace=False)
        rt.register_kernel("gemm", cost_fn=lambda *a: dgemm(128, 128, 128))
        r = rt.register(1 << 16)
        rt.task("gemm", ins=[r], outs=[r])
        rt.taskwait(flush=False)
        m = rt.metrics()
        assert set(m) == METRIC_KEYS | {"fabric"}
        assert m["actions"]["completed"] >= 1
        rt.fini()
