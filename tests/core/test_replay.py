"""Tests for graph capture and replay: template recording, admission
through the precomputed-dependence pipeline, buffer rebinding, and the
interactions with elision, faults, and failure policies."""

import threading
import time

import numpy as np
import pytest

from repro import (
    FaultPlan,
    FaultSpec,
    HStreams,
    InjectedFault,
    OperandMode,
    XferDirection,
    inject_faults,
    make_platform,
)
from repro.core.errors import (
    HStreamsBadArgument,
    HStreamsInvalid,
    HStreamsNotFound,
)
from repro.sim.kernels import dgemm


def thread_runtime(**kw):
    return HStreams(platform=make_platform("HSW", 1), backend="thread", **kw)


def sim_runtime(**kw):
    return HStreams(platform=make_platform("HSW", 1), backend="sim", **kw)


def scale_runtime(backend="thread", **kw):
    hs = thread_runtime(**kw) if backend == "thread" else sim_runtime(**kw)
    hs.register_kernel(
        "scale",
        fn=lambda x, f: np.multiply(x, f, out=x),
        cost_fn=lambda *a: dgemm(64, 64, 64),
    )
    return hs


def capture_pipeline(hs, s, buf, n=8):
    """Capture the canonical h2d -> compute -> d2h cell."""
    with hs.capture_graph() as g:
        hs.enqueue_xfer(s, buf)
        hs.enqueue_compute(s, "scale", args=(buf.tensor((n,)), 2.0))
        hs.enqueue_xfer(s, buf, XferDirection.SINK_TO_SRC)
    hs.thread_synchronize()
    return g


class TestCaptureTemplate:
    def test_warm_capture_executes_and_records(self):
        hs = scale_runtime()
        s = hs.stream_create(domain=1, ncores=4)
        data = np.arange(8.0)
        buf = hs.wrap(data)
        g = capture_pipeline(hs, s, buf)
        # Warm: the captured iteration really ran.
        assert (data == np.arange(8.0) * 2).all()
        assert len(g) == 3
        assert g.finalized
        # Chain edges: compute after h2d, d2h after both.
        assert g.dep_indices == [(), (0,), (0, 1)]
        assert g.external_deps == 0
        assert [s_.id for s_ in g.streams] == [s.id]
        hs.fini()

    def test_template_trace_validates_clean(self):
        hs = scale_runtime()
        s = hs.stream_create(domain=1, ncores=4)
        buf = hs.wrap(np.arange(8.0))
        g = capture_pipeline(hs, s, buf)
        assert g.validate() == []
        hs.fini()

    def test_pre_capture_work_becomes_external_dep(self):
        # Sim backend: nothing completes until a sync, so the
        # pre-capture transfer is deterministically still in flight
        # when the captured compute's window scan finds it.
        hs = scale_runtime("sim")
        s = hs.stream_create(domain=1, ncores=4)
        buf = hs.buffer_create(nbytes=64)
        hs.enqueue_xfer(s, buf)  # outside the scope
        with hs.capture_graph() as g:
            hs.enqueue_compute(s, "scale", args=(buf.tensor((8,)), 2.0))
            hs.enqueue_xfer(s, buf, XferDirection.SINK_TO_SRC)
        hs.thread_synchronize()
        # Both captured actions conflict with the still-live transfer.
        assert g.external_deps == 2
        assert g.dep_indices[0] == ()  # the dropped edge was external
        assert g.dep_indices[1] == (0,)  # internal edge survives
        hs.replay(g)
        hs.thread_synchronize()
        assert hs.metrics()["actions"]["completed"] == 5
        hs.fini()

    def test_stat_delta_counts_by_kind(self):
        hs = scale_runtime()
        s = hs.stream_create(domain=1, ncores=4)
        buf = hs.wrap(np.arange(8.0))
        g = capture_pipeline(hs, s, buf)
        delta = g.stat_delta()
        assert delta["computes"] == 1
        assert delta["transfers"] == 2
        assert delta["bytes_transferred"] == 2 * buf.nbytes
        before = dict(hs.stats)
        hs.replay(g)
        hs.thread_synchronize()
        assert hs.stats["computes"] == before["computes"] + 1
        assert hs.stats["transfers"] == before["transfers"] + 2
        hs.fini()


class TestCaptureGuards:
    def test_capture_scopes_do_not_nest(self):
        hs = scale_runtime()
        with hs.capture_graph():
            with pytest.raises(HStreamsInvalid, match="nest"):
                with hs.capture_graph():
                    pass
        hs.fini()

    def test_host_sync_inside_capture_rejected(self):
        hs = scale_runtime()
        s = hs.stream_create(domain=1, ncores=4)
        buf = hs.wrap(np.arange(8.0))
        with pytest.raises(HStreamsInvalid, match="thread_synchronize"):
            with hs.capture_graph():
                hs.enqueue_xfer(s, buf)
                hs.thread_synchronize()
        hs.thread_synchronize()
        hs.fini()

    def test_stream_synchronize_inside_capture_rejected(self):
        hs = scale_runtime()
        s = hs.stream_create(domain=1, ncores=4)
        with pytest.raises(HStreamsInvalid, match="stream_synchronize"):
            with hs.capture_graph():
                hs.stream_synchronize(s)
        hs.fini()

    def test_buffer_lifecycle_inside_capture_rejected(self):
        hs = scale_runtime()
        with pytest.raises(HStreamsInvalid, match="buffer"):
            with hs.capture_graph():
                hs.buffer_create(nbytes=64)
        hs.fini()

    def test_stream_create_inside_capture_rejected(self):
        hs = scale_runtime()
        with pytest.raises(HStreamsInvalid, match="stream"):
            with hs.capture_graph():
                hs.stream_create(domain=1, ncores=4)
        hs.fini()

    def test_aborted_capture_leaves_template_unfinalized(self):
        hs = scale_runtime()
        s = hs.stream_create(domain=1, ncores=4)
        buf = hs.wrap(np.arange(8.0))
        with pytest.raises(ValueError):
            with hs.capture_graph() as g:
                hs.enqueue_xfer(s, buf)
                raise ValueError("user bug")
        hs.thread_synchronize()
        assert not g.finalized
        with pytest.raises(HStreamsInvalid, match="finalized"):
            hs.replay(g)
        # The runtime recovered: a fresh scope works.
        g2 = capture_pipeline(hs, s, buf)
        assert g2.finalized
        hs.fini()

    def test_replay_inside_capture_rejected(self):
        hs = scale_runtime()
        s = hs.stream_create(domain=1, ncores=4)
        buf = hs.wrap(np.arange(8.0))
        g = capture_pipeline(hs, s, buf)
        with pytest.raises(HStreamsInvalid, match="inside capture_graph"):
            with hs.capture_graph():
                hs.replay(g)
        hs.fini()


class TestReplay:
    @pytest.mark.parametrize("backend", ["thread", "sim"])
    def test_replay_matches_reenqueue_counts(self, backend):
        hs = scale_runtime(backend)
        s = hs.stream_create(domain=1, ncores=4)
        buf = hs.wrap(np.arange(8.0))
        g = capture_pipeline(hs, s, buf)
        for _ in range(3):
            hs.replay(g)
            hs.thread_synchronize()
        m = hs.metrics()
        # 3 capture-run actions + 9 replayed, all complete.
        assert m["actions"]["enqueued"] == 12
        assert m["actions"]["completed"] == 12
        assert m["actions"]["failed"] == 0
        hs.fini()

    def test_replay_numerics_match_reenqueue(self):
        hs = scale_runtime()
        s = hs.stream_create(domain=1, ncores=4)
        data = np.arange(8.0)
        buf = hs.wrap(data)
        g = capture_pipeline(hs, s, buf)
        for _ in range(3):
            hs.replay(g)
            hs.thread_synchronize()
        replayed = data.copy()
        # Same program via plain re-enqueue on a fresh runtime.
        hs2 = scale_runtime()
        s2 = hs2.stream_create(domain=1, ncores=4)
        data2 = np.arange(8.0)
        buf2 = hs2.wrap(data2)
        for _ in range(4):
            hs2.enqueue_xfer(s2, buf2)
            hs2.enqueue_compute(s2, "scale", args=(buf2.tensor((8,)), 2.0))
            hs2.enqueue_xfer(s2, buf2, XferDirection.SINK_TO_SRC)
            hs2.thread_synchronize()
        assert (replayed == data2).all()
        hs.fini()
        hs2.fini()

    @pytest.mark.parametrize("backend", ["thread", "sim"])
    def test_replay_runs_no_dependence_scan(self, backend):
        hs = scale_runtime(backend)
        s = hs.stream_create(domain=1, ncores=4)
        buf = hs.wrap(np.arange(8.0))
        g = capture_pipeline(hs, s, buf)
        before = hs.metrics()["streams"][s.id]["dep_scan_comparisons"]
        for _ in range(5):
            hs.replay(g)
            hs.thread_synchronize()
        after = hs.metrics()["streams"][s.id]["dep_scan_comparisons"]
        assert after == before
        hs.fini()

    def test_replay_events_are_waitable(self):
        hs = scale_runtime()
        s = hs.stream_create(domain=1, ncores=4)
        buf = hs.wrap(np.arange(8.0))
        g = capture_pipeline(hs, s, buf)
        inst = hs.replay(g)
        assert len(inst.events) == 3
        hs.event_wait(inst.events)
        assert all(ev.is_complete() for ev in inst.events)
        hs.fini()

    def test_cross_stream_template(self):
        hs = scale_runtime()
        s1 = hs.stream_create(domain=1, ncores=2)
        s2 = hs.stream_create(domain=1, ncores=2)
        data = np.arange(8.0)
        buf = hs.wrap(data)
        with hs.capture_graph() as g:
            ev = hs.enqueue_xfer(s1, buf)
            hs.event_stream_wait(s2, [ev], operands=[buf])
            hs.enqueue_compute(s2, "scale", args=(buf.tensor((8,)), 2.0))
            hs.enqueue_xfer(s2, buf, XferDirection.SINK_TO_SRC)
        hs.thread_synchronize()
        assert (data == np.arange(8.0) * 2).all()
        # The explicit wait became a template-internal edge.
        assert g.dep_indices[1] == (0,)
        hs.replay(g)
        hs.thread_synchronize()
        assert (data == np.arange(8.0) * 4).all()
        hs.fini()

    def test_replay_on_capture_only_runtime(self):
        hs = HStreams(
            platform=make_platform("HSW", 1), backend="thread", capture_only=True
        )
        hs.register_kernel("scale", fn=lambda x, f: None)
        s = hs.stream_create(domain=1, ncores=4)
        buf = hs.buffer_create(nbytes=64)
        with hs.capture_graph() as g:
            hs.enqueue_xfer(s, buf)
            hs.enqueue_compute(s, "scale", args=(buf.all_inout(), 2.0))
        hs.thread_synchronize()
        before = hs.stats["computes"]
        hs.replay(g)
        hs.thread_synchronize()
        assert hs.stats["computes"] == before + 1
        # The whole-program recorder saw the replayed admissions too.
        seqs = [e.action.seq for e in hs.capture.trace.actions()]
        assert len(seqs) == len(set(seqs)) == 4
        hs.fini()

    def test_per_replay_transfer_elision(self):
        hs = scale_runtime()
        s = hs.stream_create(domain=1, ncores=4)
        data = np.arange(8.0)
        buf = hs.wrap(data)
        # Read-only pipeline: the h2d moves bytes once; on replay the
        # sink copy is still valid, so the memory manager elides it —
        # a *fresh* decision per replay, not the captured one.
        hs.register_kernel("touch", fn=lambda x: None)
        with hs.capture_graph() as g:
            hs.enqueue_xfer(s, buf)
            hs.enqueue_compute(
                s, "touch", args=(buf.tensor((8,), mode=OperandMode.IN),)
            )
        hs.thread_synchronize()
        elided_before = hs.metrics()["memory"]["elided_transfers"]
        assert not g.protos[0].elided  # warm run really transferred
        inst = hs.replay(g)
        hs.thread_synchronize()
        assert hs.metrics()["memory"]["elided_transfers"] == elided_before + 1
        assert inst.actions[0].elided
        hs.fini()


class TestInstantiate:
    def test_bindings_remap_operands(self):
        hs = scale_runtime()
        s = hs.stream_create(domain=1, ncores=4)
        data = np.arange(8.0)
        buf = hs.wrap(data)
        g = capture_pipeline(hs, s, buf)
        data2 = np.arange(8.0) + 100
        buf2 = hs.wrap(data2)
        hs.replay(g, bindings={buf: buf2})
        hs.thread_synchronize()
        assert (data2 == (np.arange(8.0) + 100) * 2).all()
        assert (data == np.arange(8.0) * 2).all()  # original untouched
        hs.fini()

    def test_binding_size_mismatch_rejected(self):
        hs = scale_runtime()
        s = hs.stream_create(domain=1, ncores=4)
        buf = hs.wrap(np.arange(8.0))
        g = capture_pipeline(hs, s, buf)
        small = hs.wrap(np.arange(4.0))
        with pytest.raises(HStreamsBadArgument, match="sizes must match"):
            g.instantiate({buf: small})
        hs.fini()

    def test_binding_write_to_read_only_rejected(self):
        hs = scale_runtime()
        s = hs.stream_create(domain=1, ncores=4)
        buf = hs.wrap(np.arange(8.0))
        g = capture_pipeline(hs, s, buf)
        ro = hs.buffer_create(nbytes=buf.nbytes, read_only=True)
        with pytest.raises(HStreamsBadArgument, match="read-only"):
            g.instantiate({buf: ro})
        hs.fini()

    def test_instance_is_single_use(self):
        hs = scale_runtime()
        s = hs.stream_create(domain=1, ncores=4)
        buf = hs.wrap(np.arange(8.0))
        g = capture_pipeline(hs, s, buf)
        inst = hs.replay(g)
        hs.thread_synchronize()
        with pytest.raises(HStreamsInvalid, match="single-use"):
            hs.replay(inst)
        hs.fini()

    def test_bindings_with_instance_rejected(self):
        hs = scale_runtime()
        s = hs.stream_create(domain=1, ncores=4)
        buf = hs.wrap(np.arange(8.0))
        g = capture_pipeline(hs, s, buf)
        inst = g.instantiate()
        with pytest.raises(HStreamsBadArgument, match="instantiation"):
            hs.replay(inst, bindings={buf: buf})
        hs.fini()


class TestReplayPreflight:
    def test_replay_into_busy_stream_rejected(self):
        hs = scale_runtime()
        gate = threading.Event()
        hs.register_kernel("block", fn=lambda x: gate.wait(5.0))
        s = hs.stream_create(domain=1, ncores=4)
        buf = hs.wrap(np.arange(8.0))
        g = capture_pipeline(hs, s, buf)
        hs.enqueue_compute(s, "block", args=(buf.tensor((8,)),))
        try:
            with pytest.raises(HStreamsInvalid, match="busy stream"):
                hs.replay(g)
        finally:
            gate.set()
        hs.thread_synchronize()
        hs.replay(g)  # quiescent now
        hs.thread_synchronize()
        hs.fini()

    def test_replay_after_stream_destroy_rejected(self):
        hs = scale_runtime()
        s = hs.stream_create(domain=1, ncores=4)
        buf = hs.wrap(np.arange(8.0))
        g = capture_pipeline(hs, s, buf)
        hs.stream_destroy(s)
        with pytest.raises(HStreamsNotFound, match="destroyed"):
            hs.replay(g)
        hs.fini()

    def test_cross_runtime_replay_rejected(self):
        hs = scale_runtime()
        s = hs.stream_create(domain=1, ncores=4)
        buf = hs.wrap(np.arange(8.0))
        g = capture_pipeline(hs, s, buf)
        other = scale_runtime()
        with pytest.raises(HStreamsInvalid, match="different runtime"):
            other.replay(g)
        hs.fini()
        other.fini()

    def test_replay_takes_only_graph_types(self):
        hs = scale_runtime()
        with pytest.raises(HStreamsBadArgument, match="GraphTemplate"):
            hs.replay(object())
        hs.fini()


class TestReplayFailures:
    def test_replay_after_failure_poisons_on_conflict(self):
        hs = scale_runtime(failure_policy="poison")
        hs.register_kernel("boom", fn=lambda x: 1 / 0)
        s = hs.stream_create(domain=1, ncores=4)
        data = np.arange(8.0)
        buf = hs.wrap(data)
        g = capture_pipeline(hs, s, buf)
        hs.enqueue_compute(s, "boom", args=(buf.tensor((8,)),))
        with pytest.raises(ZeroDivisionError):
            hs.thread_synchronize()
        # The failed producer left a tombstone; replayed work touching
        # the same bytes is poisoned exactly like re-enqueued work.
        inst = hs.replay(g)
        with pytest.raises(ZeroDivisionError):
            hs.thread_synchronize()
        assert all(ev.record.state == "cancelled" for ev in inst.events)
        hs.clear_failure()
        hs.replay(g)
        hs.thread_synchronize()
        hs.fini()

    def test_transient_fault_during_replay_retries(self):
        hs = scale_runtime(failure_policy="retry")
        s = hs.stream_create(domain=1, ncores=4)
        data = np.arange(8.0)
        buf = hs.wrap(data)
        g = capture_pipeline(hs, s, buf)
        # Arm a one-shot transient fault on the *replayed* compute.
        inject_faults(
            hs,
            FaultPlan([FaultSpec(kernel="scale", nth=1, transient=True)]),
        )
        hs.replay(g)
        hs.thread_synchronize()
        assert (data == np.arange(8.0) * 4).all()
        m = hs.metrics()
        assert m["actions"]["retried"] == 1
        assert m["actions"]["failed"] == 0
        hs.fini()

    def test_fault_during_replay_fail_fast(self):
        hs = scale_runtime(failure_policy="fail_fast")
        s = hs.stream_create(domain=1, ncores=4)
        buf = hs.wrap(np.arange(8.0))
        g = capture_pipeline(hs, s, buf)
        inject_faults(hs, FaultPlan([FaultSpec(kernel="scale", nth=1)]))
        hs.replay(g)
        with pytest.raises(InjectedFault):
            hs.thread_synchronize()
        # fail_fast rejects further replays until cleared.
        with pytest.raises(InjectedFault):
            hs.replay(g)
        hs.clear_failure()
        hs.replay(g)
        hs.thread_synchronize()
        hs.fini()
