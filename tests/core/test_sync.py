"""rtsan dynamic sanitizer: every rule fires, and disabled mode is a
true passthrough.

The firing tests run the sanitizer in ``record`` mode and assert on the
collected diagnostics (raise mode is covered where the raise itself is
the observable). The passthrough tests assert both the structural
guarantee (plain ``threading`` primitives, no wrappers) and behavioral
equivalence of the wrappers against the stdlib under randomized
interleavings.
"""

import threading
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import HStreams, make_platform
from repro.core.actions import XferDirection
from repro.core.sync import (
    RtsanViolation,
    SanCondition,
    SanLock,
    Sanitizer,
    make_condition,
    make_lock,
    sanitize_mode_from_env,
)
from repro.sim.kernels import dgemm


_open_sanitizers = []


def sanitizer():
    san = Sanitizer(mode="record")
    _open_sanitizers.append(san)
    return san


@pytest.fixture(autouse=True)
def _close_sanitizers():
    """Close every sanitizer a test opened, pass or fail — a leaked one
    keeps the global blocking-call patches installed."""
    yield
    while _open_sanitizers:
        _open_sanitizers.pop().close()


def rules_of(san):
    return [d.rule for d in san.findings()]


class TestPassthrough:
    def test_make_lock_without_sanitizer_is_plain_threading(self):
        lock = make_lock("x")
        rlock = make_lock("x", reentrant=True)
        assert isinstance(lock, type(threading.Lock()))
        assert isinstance(rlock, type(threading.RLock()))

    def test_make_condition_without_sanitizer_is_plain_threading(self):
        cv = make_condition(None, "c")
        assert isinstance(cv, threading.Condition)
        lock = threading.Lock()
        cv2 = make_condition(lock, "c")
        assert cv2._lock is lock

    def test_unsanitized_runtime_uses_plain_primitives(self, monkeypatch):
        # The whole suite may run under REPRO_SANITIZE=1; this test is
        # about the *default* (env-less) construction path.
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        hs = HStreams(platform=make_platform("HSW", 1), backend="sim",
                      trace=False)
        try:
            assert hs.sanitizer is None
            assert not isinstance(hs.scheduler._lock, SanLock)
            assert not isinstance(hs.scheduler._idle, SanCondition)
            assert type(hs.scheduler).__name__ == "Scheduler"
            assert not getattr(type(hs.scheduler), "__rtsan_instrumented__", False)
        finally:
            hs.fini()

    def test_sanitized_runtime_instruments_and_close_reverts(self):
        hs = HStreams(platform=make_platform("HSW", 1), backend="sim",
                      trace=False, sanitize=True)
        assert hs.sanitizer is not None
        assert isinstance(hs.scheduler._lock, SanLock)
        assert getattr(type(hs.scheduler), "__rtsan_instrumented__", False)
        hs.fini()
        # close() swapped the original classes back in.
        assert not getattr(type(hs.scheduler), "__rtsan_instrumented__", False)

    def test_env_mode_parsing(self):
        assert sanitize_mode_from_env({}) is None
        assert sanitize_mode_from_env({"REPRO_SANITIZE": "0"}) is None
        assert sanitize_mode_from_env({"REPRO_SANITIZE": "off"}) is None
        assert sanitize_mode_from_env({"REPRO_SANITIZE": "1"}) == "raise"
        assert sanitize_mode_from_env({"REPRO_SANITIZE": "raise"}) == "raise"
        assert sanitize_mode_from_env({"REPRO_SANITIZE": "record"}) == "record"


class TestLockOrderInversion:
    def test_ab_ba_cycle_reported(self):
        san = sanitizer()
        a = make_lock("A", sanitizer=san)
        b = make_lock("B", sanitizer=san)
        with a:
            with b:  # establishes A -> B
                pass
        with b:
            with a:  # inverts: B -> A closes the cycle
                pass
        assert "lock-order-inversion" in rules_of(san)
        msg = san.findings("lock-order-inversion")[0].message
        assert "'A'" in msg and "'B'" in msg
        san.close()

    def test_three_lock_cycle_via_transitive_path(self):
        san = sanitizer()
        a = make_lock("A", sanitizer=san)
        b = make_lock("B", sanitizer=san)
        c = make_lock("C", sanitizer=san)
        with a, b:
            pass  # A -> B
        with b, c:
            pass  # B -> C
        with c, a:
            pass  # C -> A closes A -> B -> C -> A
        assert "lock-order-inversion" in rules_of(san)
        san.close()

    def test_consistent_order_is_clean(self):
        san = sanitizer()
        a = make_lock("A", sanitizer=san)
        b = make_lock("B", sanitizer=san)
        for _ in range(3):
            with a, b:
                pass
        assert san.findings() == []
        san.close()

    def test_nonreentrant_self_reacquire_reported_before_deadlock(self):
        san = sanitizer()
        a = make_lock("A", sanitizer=san)
        san.mode = "raise"
        with a:
            with pytest.raises(RtsanViolation, match="self-deadlock"):
                a.acquire()
        san.close()

    def test_reentrant_self_reacquire_is_legal(self):
        san = sanitizer()
        a = make_lock("A", reentrant=True, sanitizer=san)
        with a:
            with a:
                pass
        assert san.findings() == []
        san.close()


class TestGuardedFields:
    def _widget(self, san):
        from repro.core.sync import guarded_by

        @guarded_by("_lock", "count")
        class Widget:
            def __init__(self, sanitizer):
                self._lock = make_lock("widget", sanitizer=sanitizer)
                self.count = 0

        w = Widget(san)
        san.instrument(w)
        return w

    def test_unguarded_write_reported(self):
        san = sanitizer()
        w = self._widget(san)
        w.count = 1
        assert rules_of(san) == ["unguarded-access"]
        assert "write" in san.findings()[0].message
        san.close()

    def test_unguarded_read_reported(self):
        san = sanitizer()
        w = self._widget(san)
        with w._lock:
            w.count = 1
        _ = w.count
        assert rules_of(san) == ["unguarded-access"]
        assert "read" in san.findings()[0].message
        san.close()

    def test_access_under_lock_is_clean(self):
        san = sanitizer()
        w = self._widget(san)
        with w._lock:
            w.count += 1
            assert w.count == 1
        assert san.findings() == []
        san.close()

    def test_close_reverts_instrumentation(self):
        san = sanitizer()
        w = self._widget(san)
        san.close()
        w.count = 5  # no sanitizer left to object
        assert w.count == 5


class TestConditionDiscipline:
    def test_wait_without_lock_reported(self):
        san = sanitizer()
        lock = make_lock("L", sanitizer=san)
        cv = make_condition(lock, "C")
        # The diagnostic records first; the inner primitive then raises
        # exactly as threading.Condition would (behavioral parity).
        with pytest.raises(RuntimeError, match="un-acquired"):
            cv.wait(timeout=0.001)
        assert "cv-without-lock" in rules_of(san)
        san.close()

    def test_notify_without_lock_reported(self):
        san = sanitizer()
        lock = make_lock("L", sanitizer=san)
        cv = make_condition(lock, "C")
        with pytest.raises(RuntimeError, match="un-acquired"):
            cv.notify()
        assert "cv-without-lock" in rules_of(san)
        san.close()

    def test_wait_notify_under_lock_is_clean(self):
        san = sanitizer()
        lock = make_lock("L", sanitizer=san)
        cv = make_condition(lock, "C")
        hits = []

        def waiter():
            with cv:
                cv.wait_for(lambda: hits, timeout=2.0)

        t = threading.Thread(target=waiter)
        t.start()
        time.sleep(0.05)
        with cv:
            hits.append(1)
            cv.notify_all()
        t.join(timeout=2.0)
        assert not t.is_alive()
        assert san.findings() == []
        san.close()

    def test_wait_restores_held_set(self):
        san = sanitizer()
        lock = make_lock("L", sanitizer=san)
        cv = make_condition(lock, "C")
        with cv:
            cv.wait(timeout=0.01)
            # After a timed-out wait the lock is held again and the
            # bookkeeping agrees.
            assert lock.held_by_current_thread()
        assert not lock.held_by_current_thread()
        assert san.findings() == []
        san.close()


class TestBlockingUnderLock:
    def test_sleep_under_no_block_lock_reported(self):
        san = sanitizer()
        lock = make_lock("sched", no_block=True, sanitizer=san)
        with lock:
            time.sleep(0.001)
        assert "blocking-under-lock" in rules_of(san)
        san.close()

    def test_event_wait_under_no_block_lock_reported(self):
        san = sanitizer()
        lock = make_lock("sched", no_block=True, sanitizer=san)
        ev = threading.Event()
        ev.set()
        with lock:
            ev.wait(timeout=0.001)
        assert "blocking-under-lock" in rules_of(san)
        san.close()

    def test_sleep_under_ordinary_lock_is_clean(self):
        san = sanitizer()
        lock = make_lock("misc", sanitizer=san)
        with lock:
            time.sleep(0.001)
        assert san.findings() == []
        san.close()

    def test_concurrent_release_acquire_keeps_held_set_clean(self):
        # Regression: release() used to drop the raw lock before its
        # bookkeeping, so a thread acquiring in that window made the
        # releaser mis-file the release as cross-thread — leaking a
        # permanent held-set entry that poisoned every later blocking
        # call on that thread with blocking-under-lock.
        san = sanitizer()
        lock = make_lock("sched", no_block=True, sanitizer=san)
        stop = threading.Event()

        def churn():
            while not stop.is_set():
                with lock:
                    pass

        threads = [threading.Thread(target=churn, daemon=True) for _ in range(2)]
        for t in threads:
            t.start()
        try:
            for _ in range(400):
                with lock:
                    pass
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=5.0)
        from repro.core.sync import _held_locks

        assert lock not in _held_locks()
        time.sleep(0.001)  # a poisoned held set would report here
        assert rules_of(san) == []
        san.close()

    def test_stale_cross_thread_release_entry_is_pruned(self):
        # A plain Lock may legally be released by another thread; the
        # original holder's held-set entry goes stale and must be
        # pruned by ground truth, not reported as blocking-under-lock.
        san = sanitizer()
        lock = make_lock("gate", no_block=True, sanitizer=san)
        go = threading.Event()
        done = threading.Event()

        def releaser():
            go.wait(timeout=5.0)
            lock.release()
            done.set()

        t = threading.Thread(target=releaser, daemon=True)
        t.start()  # before acquire: Thread.start blocks internally
        lock.acquire()
        go.set()
        # Spin (no patched blocking call) until the cross-thread
        # release lands; main's held-set entry is now stale.
        deadline = time.monotonic() + 5.0
        while not done.is_set() and time.monotonic() < deadline:
            pass
        assert done.is_set()
        t.join(timeout=5.0)
        time.sleep(0.001)
        assert rules_of(san) == []
        from repro.core.sync import _held_locks

        assert lock not in _held_locks()
        san.close()

    def test_patches_are_reverted_after_close(self):
        # Under REPRO_SANITIZE=1 another live sanitized runtime (e.g. a
        # session-scoped fixture elsewhere in the run) may already hold
        # the refcounted patch; open/close must be balanced either way.
        already_patched = "_install_blocking_patches" in time.sleep.__qualname__
        before_sleep = time.sleep
        before_wait = threading.Event.wait
        san = sanitizer()
        if not already_patched:
            assert time.sleep is not before_sleep
            assert threading.Event.wait is not before_wait
        san.close()
        assert time.sleep is before_sleep
        assert threading.Event.wait is before_wait


class TestInvariantViolation:
    def test_corrupted_counter_reported(self):
        hs = HStreams(platform=make_platform("HSW", 1), backend="sim",
                      trace=False, sanitize="record")
        try:
            hs.register_kernel("k", cost_fn=lambda *a: dgemm(64, 64, 64))
            s = hs.stream_create(domain=1, ncores=4)
            buf = hs.buffer_create(nbytes=64)
            hs.enqueue_compute(s, "k", args=(buf.all_inout(),))
            hs.thread_synchronize()
            assert hs.sanitizer.findings() == []
            # Corrupt the outstanding counter; the next transition's
            # deep-check must notice the graph/counter divergence.
            with hs.scheduler._lock:
                hs.scheduler._outstanding += 1
            hs.enqueue_compute(s, "k", args=(buf.all_inout(),))
            assert "invariant-violation" in rules_of(hs.sanitizer)
        finally:
            # Un-corrupt so the drain in fini() can reach idle.
            with hs.scheduler._lock:
                hs.scheduler._outstanding -= 1
            hs.fini()

    def test_check_invariants_clean_on_live_runtime(self):
        hs = HStreams(platform=make_platform("HSW", 1), backend="sim",
                      trace=False)
        try:
            hs.register_kernel("k", cost_fn=lambda *a: dgemm(64, 64, 64))
            s = hs.stream_create(domain=1, ncores=4)
            buf = hs.buffer_create(nbytes=64)
            for _ in range(8):
                hs.enqueue_compute(s, "k", args=(buf.all_inout(),))
            assert hs.scheduler.check_invariants() == []
            hs.thread_synchronize()
            assert hs.scheduler.check_invariants() == []
        finally:
            hs.fini()


class TestSanitizedRuntimeEndToEnd:
    @pytest.mark.parametrize("backend", ["thread", "sim"])
    def test_clean_program_stays_clean(self, backend):
        hs = HStreams(platform=make_platform("HSW", 1), backend=backend,
                      trace=False, sanitize=True)
        try:
            hs.register_kernel("k", fn=lambda x: None,
                               cost_fn=lambda *a: dgemm(64, 64, 64))
            s = hs.stream_create(domain=1, ncores=4)
            buf = hs.buffer_create(nbytes=256)
            hs.enqueue_xfer(s, buf)
            hs.enqueue_compute(s, "k", args=(buf.all_inout(),))
            hs.enqueue_xfer(s, buf, direction=XferDirection.SINK_TO_SRC)
            hs.thread_synchronize()
            assert hs.sanitizer.findings() == []
            assert hs.metrics()["actions"]["completed"] == 3
        finally:
            hs.fini()

    def test_raise_mode_surfaces_at_call_site(self):
        hs = HStreams(platform=make_platform("HSW", 1), backend="sim",
                      trace=False, sanitize=True)
        try:
            with pytest.raises(RtsanViolation, match="unguarded-access"):
                hs.scheduler._outstanding = 0
        finally:
            hs.fini()


# -- disabled-mode behavioral parity (property-based) ---------------------------

OPS = st.lists(
    st.sampled_from(["acquire", "release", "try_acquire", "timed_acquire"]),
    min_size=1,
    max_size=12,
)


def drive_lock(lock, ops):
    """Apply a scripted op sequence; return (results, final_locked)."""
    out = []
    depth = 0
    for op in ops:
        if op == "acquire":
            if depth:  # would deadlock a plain Lock; skip like-for-like
                continue
            out.append(("acq", lock.acquire()))
            depth += 1
        elif op == "try_acquire":
            got = lock.acquire(False)
            out.append(("try", got))
            if got:
                depth += 1
        elif op == "timed_acquire":
            got = lock.acquire(True, 0.001)
            out.append(("timed", got))
            if got:
                depth += 1
        elif op == "release":
            if depth:
                lock.release()
                depth -= 1
                out.append(("rel", True))
            else:
                try:
                    lock.release()
                    out.append(("rel", True))
                except RuntimeError:
                    out.append(("rel", "error"))
    while depth:
        lock.release()
        depth -= 1
    return out


class TestBehavioralParity:
    @settings(max_examples=60, deadline=None)
    @given(ops=OPS)
    def test_sanlock_matches_threading_lock(self, ops):
        san = Sanitizer(mode="record")
        try:
            plain = drive_lock(threading.Lock(), ops)
            wrapped = drive_lock(make_lock("p", sanitizer=san), ops)
            assert plain == wrapped
        finally:
            san.close()

    @settings(max_examples=40, deadline=None)
    @given(
        nwaiters=st.integers(min_value=1, max_value=3),
        prenotify=st.booleans(),
        timeout=st.sampled_from([0.001, 0.05, None]),
    )
    def test_sancondition_matches_threading_condition(
        self, nwaiters, prenotify, timeout
    ):
        """Waiters either all see the flag or all time out — identically
        for threading.Condition and SanCondition."""

        def run(cv):
            flag = []
            results = []
            res_lock = threading.Lock()

            def waiter():
                with cv:
                    ok = cv.wait_for(lambda: bool(flag), timeout=timeout)
                with res_lock:
                    results.append(ok)

            threads = [
                threading.Thread(target=waiter, daemon=True)
                for _ in range(nwaiters)
            ]
            if prenotify:
                with cv:
                    flag.append(1)
                    cv.notify_all()
            for t in threads:
                t.start()
            if not prenotify and timeout is None:
                # Re-notify until every waiter has finished: a single
                # notify_all after a fixed sleep can race a waiter that
                # has not reached wait() yet on a loaded machine.
                deadline = time.monotonic() + 10.0
                while any(t.is_alive() for t in threads):
                    with cv:
                        if not flag:
                            flag.append(1)
                        cv.notify_all()
                    if time.monotonic() > deadline:
                        break
                    time.sleep(0.002)
            for t in threads:
                t.join(timeout=5.0)
            assert not any(t.is_alive() for t in threads)
            return sorted(results)

        san = Sanitizer(mode="record")
        try:
            plain = run(threading.Condition())
            wrapped = run(make_condition(None, "c", sanitizer=san))
            if timeout is None or prenotify:
                # Deterministic outcome: all waiters must succeed.
                assert plain == wrapped == [True] * nwaiters
            else:
                # Timing-dependent timeouts: require identical types,
                # not identical draws.
                assert {type(r) for r in plain} == {type(r) for r in wrapped} == {bool}
            assert san.findings() == []
        finally:
            san.close()
