"""Tests for operands, conflict rules, and action types."""

import pytest
from hypothesis import given, strategies as st

from repro.core.actions import (
    Action,
    ActionKind,
    Operand,
    OperandMode,
    as_operands,
)
from repro.core.buffer import Buffer, ProxyAddressSpace
from repro.core.errors import HStreamsBadArgument


@pytest.fixture()
def buf():
    return Buffer(ProxyAddressSpace(), nbytes=1024, name="b")


@pytest.fixture()
def buf2():
    return Buffer(ProxyAddressSpace(), nbytes=1024, name="b2")


class TestOperandModes:
    def test_in_reads_only(self):
        assert OperandMode.IN.reads and not OperandMode.IN.writes

    def test_out_writes_only(self):
        assert OperandMode.OUT.writes and not OperandMode.OUT.reads

    def test_inout_both(self):
        assert OperandMode.INOUT.reads and OperandMode.INOUT.writes


class TestOperand:
    def test_range_validation(self, buf):
        with pytest.raises(HStreamsBadArgument):
            Operand(buf, -1, 10)
        with pytest.raises(HStreamsBadArgument):
            Operand(buf, 1000, 100)  # runs past the end

    def test_end(self, buf):
        assert Operand(buf, 100, 50).end == 150

    def test_overlap_same_buffer(self, buf):
        a = Operand(buf, 0, 100)
        b = Operand(buf, 50, 100)
        c = Operand(buf, 100, 100)
        assert a.overlaps(b)
        assert not a.overlaps(c)  # half-open ranges: [0,100) vs [100,200)

    def test_no_overlap_across_buffers(self, buf, buf2):
        assert not Operand(buf, 0, 100).overlaps(Operand(buf2, 0, 100))

    def test_conflict_requires_a_writer(self, buf):
        r1 = Operand(buf, 0, 100, OperandMode.IN)
        r2 = Operand(buf, 50, 100, OperandMode.IN)
        w = Operand(buf, 50, 100, OperandMode.OUT)
        assert not r1.conflicts_with(r2)  # read-read never conflicts
        assert r1.conflicts_with(w)
        assert w.conflicts_with(r1)

    def test_proxy_address(self, buf):
        op = Operand(buf, 64, 8)
        assert op.proxy_address == buf.proxy_base + 64

    def test_zero_length_operand_never_overlaps(self, buf):
        z = Operand(buf, 10, 0)
        assert not z.overlaps(Operand(buf, 0, 100))

    @given(
        o1=st.integers(0, 900),
        n1=st.integers(1, 100),
        o2=st.integers(0, 900),
        n2=st.integers(1, 100),
    )
    def test_property_overlap_is_symmetric(self, o1, n1, o2, n2):
        space = ProxyAddressSpace()
        b = Buffer(space, nbytes=1024)
        a = Operand(b, o1, n1)
        c = Operand(b, o2, n2)
        assert a.overlaps(c) == c.overlaps(a)

    @given(
        o1=st.integers(0, 900),
        n1=st.integers(1, 100),
        o2=st.integers(0, 900),
        n2=st.integers(1, 100),
    )
    def test_property_overlap_matches_interval_math(self, o1, n1, o2, n2):
        space = ProxyAddressSpace()
        b = Buffer(space, nbytes=1024)
        expected = max(o1, o2) < min(o1 + n1, o2 + n2)
        assert Operand(b, o1, n1).overlaps(Operand(b, o2, n2)) == expected


class TestActionConflicts:
    def _compute(self, ops, barrier=False):
        return Action(
            kind=ActionKind.SYNC if barrier else ActionKind.COMPUTE,
            stream=None,
            operands=tuple(ops),
            barrier=barrier,
        )

    def test_disjoint_actions_do_not_conflict(self, buf):
        a = self._compute([Operand(buf, 0, 100, OperandMode.OUT)])
        b = self._compute([Operand(buf, 200, 100, OperandMode.OUT)])
        assert not a.conflicts_with(b)

    def test_overlapping_writer_conflicts(self, buf):
        a = self._compute([Operand(buf, 0, 100, OperandMode.OUT)])
        b = self._compute([Operand(buf, 50, 100, OperandMode.IN)])
        assert a.conflicts_with(b)

    def test_barrier_conflicts_with_everything(self, buf):
        bar = self._compute([], barrier=True)
        other = self._compute([Operand(buf, 0, 8, OperandMode.IN)])
        assert bar.conflicts_with(other)
        assert other.conflicts_with(bar)

    def test_multi_operand_any_pair_conflicts(self, buf, buf2):
        a = self._compute(
            [Operand(buf, 0, 64, OperandMode.IN), Operand(buf2, 0, 64, OperandMode.OUT)]
        )
        b = self._compute([Operand(buf2, 32, 64, OperandMode.IN)])
        assert a.conflicts_with(b)

    def test_display_labels(self, buf):
        a = self._compute([])
        assert "#" in a.display
        labeled = Action(kind=ActionKind.COMPUTE, stream=None, label="my-task")
        assert labeled.display == "my-task"

    def test_action_seq_monotonic(self):
        a = Action(kind=ActionKind.COMPUTE, stream=None)
        b = Action(kind=ActionKind.COMPUTE, stream=None)
        assert b.seq > a.seq


class TestAsOperands:
    def test_passthrough_and_buffer_promotion(self, buf):
        op = Operand(buf, 0, 8, OperandMode.IN)
        out = as_operands([op, buf])
        assert out[0] is op
        assert out[1].nbytes == buf.nbytes
        assert out[1].mode is OperandMode.INOUT

    def test_rejects_garbage(self):
        with pytest.raises(HStreamsBadArgument):
            as_operands([42])
