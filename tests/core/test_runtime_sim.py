"""Integration tests: the hStreams runtime on the sim backend.

These verify virtual-time behaviour: pipelining, out-of-order execution,
overheads, allocation costs, determinism.
"""

import pytest

from repro import HStreams, RuntimeConfig, XferDirection, make_platform
from repro.core.errors import HStreamsBadArgument, HStreamsTimedOut
from repro.sim.kernels import KernelCost, dgemm


def fixed_cost(seconds_at_knc: float) -> KernelCost:
    """A cost that takes ~`seconds` on one full KNC (1298 GF/s peak).

    Uses a flat default curve; exact rate doesn't matter for ordering
    tests, only relative magnitudes.
    """
    # default curve eff ~0.45 at huge size on KNC; pick flops accordingly.
    return KernelCost("default", flops=seconds_at_knc * 0.45 * 1298.1e9, size=1e9)


@pytest.fixture()
def hs():
    runtime = HStreams(
        platform=make_platform("HSW", ncards=2),
        backend="sim",
        config=RuntimeConfig(),
    )
    yield runtime


class TestVirtualTime:
    def test_clock_starts_at_zero(self, hs):
        assert hs.elapsed() == pytest.approx(0.0)

    def test_enqueue_advances_clock_by_overhead(self, hs):
        s = hs.stream_create(domain=1, ncores=61)
        b = hs.buffer_create(nbytes=1024, domains=[1])
        before = hs.elapsed()
        hs.enqueue_xfer(s, b)
        after = hs.elapsed()
        assert after - before == pytest.approx(hs.config.enqueue_overhead_s)

    def test_transfer_time_matches_link_model(self, hs):
        s = hs.stream_create(domain=1, ncores=61)
        nbytes = 64 << 20
        b = hs.buffer_create(nbytes=nbytes, domains=[1])
        t0 = hs.elapsed()
        hs.enqueue_xfer(s, b)
        hs.thread_synchronize()
        elapsed = hs.elapsed() - t0
        wire = nbytes / (6.8e9) + hs.platform.pcie_latency_s
        assert elapsed == pytest.approx(
            wire + hs.config.transfer_overhead_s, rel=0.05, abs=5e-5
        )

    def test_compute_time_scales_with_stream_width(self, hs):
        hs.register_kernel("gemm", cost_fn=lambda m, n, k, *a: dgemm(m, n, k))
        full = hs.stream_create(domain=1, ncores=61)
        b = hs.buffer_create(nbytes=8 * 2048 * 2048, domains=[1])
        t0 = hs.elapsed()
        hs.enqueue_compute(full, "gemm", args=(2048, 2048, 2048, b.all_inout()))
        hs.thread_synchronize()
        t_full = hs.elapsed() - t0

        half = hs.stream_create(domain=2, ncores=30)
        b2 = hs.buffer_create(nbytes=8 * 2048 * 2048, domains=[2])
        t1 = hs.elapsed()
        hs.enqueue_compute(half, "gemm", args=(2048, 2048, 2048, b2.all_inout()))
        hs.thread_synchronize()
        t_half = hs.elapsed() - t1
        assert t_half / t_full == pytest.approx(61 / 30, rel=0.05)

    def test_determinism(self):
        def run():
            hs = HStreams(
                platform=make_platform("HSW", 1), backend="sim", trace=False
            )
            hs.register_kernel("gemm", cost_fn=lambda m, n, k, *a: dgemm(m, n, k))
            streams = [hs.stream_create(domain=1, ncores=15) for _ in range(4)]
            bufs = [hs.buffer_create(nbytes=1 << 20, domains=[1]) for _ in range(4)]
            for s, b in zip(streams, bufs):
                hs.enqueue_xfer(s, b)
                hs.enqueue_compute(s, "gemm", args=(512, 512, 512, b.all_inout()))
                hs.enqueue_xfer(s, b, XferDirection.SINK_TO_SRC)
            hs.thread_synchronize()
            return hs.elapsed()

        assert run() == run()


class TestPipelining:
    """The core value proposition: transfers hide under compute."""

    def _tile_pipeline(self, overlap: bool) -> float:
        hs = HStreams(platform=make_platform("HSW", 1), backend="sim")
        hs.register_kernel("gemm", cost_fn=lambda m, n, k, *a: dgemm(m, n, k))
        s = hs.stream_create(domain=1, ncores=61)
        ntiles, tile = 8, 1500
        nbytes = 8 * tile * tile
        bufs = [hs.buffer_create(nbytes=nbytes, domains=[1]) for _ in range(ntiles)]
        t0 = hs.elapsed()
        for b in bufs:
            ev = hs.enqueue_xfer(s, b)
            hs.enqueue_compute(s, "gemm", args=(tile, tile, tile, b.all_inout()))
            if not overlap:
                hs.event_wait([ev])  # serialize, defeating the pipeline
                hs.stream_synchronize(s)
        hs.thread_synchronize()
        return hs.elapsed() - t0

    def test_overlap_beats_serialized(self):
        assert self._tile_pipeline(True) < 0.95 * self._tile_pipeline(False)

    def test_transfers_overlap_compute_in_trace(self, hs):
        hs.register_kernel("gemm", cost_fn=lambda m, n, k, *a: dgemm(m, n, k))
        s = hs.stream_create(domain=1, ncores=61)
        bufs = [hs.buffer_create(nbytes=8 * 1500 * 1500, domains=[1]) for _ in range(4)]
        for b in bufs:
            hs.enqueue_xfer(s, b)
            hs.enqueue_compute(s, "gemm", args=(1500, 1500, 1500, b.all_inout()))
        hs.thread_synchronize()
        assert hs.tracer.overlap("compute", "transfer") > 0

    def test_out_of_order_transfer_overtakes_blocked_compute(self, hs):
        """Paper §II example: task A computes; the transfer for independent
        task B proceeds concurrently with A."""
        hs.register_kernel("big", cost_fn=lambda *a: fixed_cost(1.0))
        s = hs.stream_create(domain=1, ncores=61)
        a = hs.buffer_create(nbytes=1024, domains=[1])
        b = hs.buffer_create(nbytes=1024, domains=[1])
        ev_a = hs.enqueue_compute(s, "big", args=(a.all_inout(),))
        ev_b = hs.enqueue_xfer(s, b)
        hs.thread_synchronize()
        assert ev_b.timestamp < ev_a.timestamp

    def test_strict_fifo_blocks_overtaking(self, hs):
        hs.register_kernel("big", cost_fn=lambda *a: fixed_cost(1.0))
        s = hs.stream_create(domain=1, ncores=61, strict_fifo=True)
        a = hs.buffer_create(nbytes=1024, domains=[1])
        b = hs.buffer_create(nbytes=1024, domains=[1])
        ev_a = hs.enqueue_compute(s, "big", args=(a.all_inout(),))
        ev_b = hs.enqueue_xfer(s, b)
        hs.thread_synchronize()
        assert ev_b.timestamp >= ev_a.timestamp

    def test_conflicting_transfer_waits_for_compute(self, hs):
        hs.register_kernel("big", cost_fn=lambda *a: fixed_cost(0.5))
        s = hs.stream_create(domain=1, ncores=61)
        a = hs.buffer_create(nbytes=1024, domains=[1])
        ev_a = hs.enqueue_compute(s, "big", args=(a.all_inout(),))
        ev_x = hs.enqueue_xfer(s, a, XferDirection.SINK_TO_SRC)
        hs.thread_synchronize()
        assert ev_x.timestamp >= ev_a.timestamp

    def test_two_streams_compute_concurrently(self, hs):
        hs.register_kernel("big", cost_fn=lambda *a: fixed_cost(1.0))
        s1 = hs.stream_create(domain=1, ncores=30)
        s2 = hs.stream_create(domain=1, ncores=30)
        b1 = hs.buffer_create(nbytes=1024, domains=[1])
        b2 = hs.buffer_create(nbytes=1024, domains=[1])
        t0 = hs.elapsed()
        hs.enqueue_compute(s1, "big", args=(b1.all_inout(),))
        hs.enqueue_compute(s2, "big", args=(b2.all_inout(),))
        hs.thread_synchronize()
        span = hs.elapsed() - t0
        # Each task takes ~2s on 30 cores; concurrent streams keep the
        # total near one task, not two.
        single = 1.0 * (61 / 30)
        assert span < 1.3 * single

    def test_same_stream_computes_serialize(self, hs):
        hs.register_kernel("big", cost_fn=lambda *a: fixed_cost(1.0))
        s = hs.stream_create(domain=1, ncores=61)
        b1 = hs.buffer_create(nbytes=1024, domains=[1])
        b2 = hs.buffer_create(nbytes=1024, domains=[1])
        t0 = hs.elapsed()
        hs.enqueue_compute(s, "big", args=(b1.all_inout(),))
        hs.enqueue_compute(s, "big", args=(b2.all_inout(),))  # independent...
        hs.thread_synchronize()
        span = hs.elapsed() - t0
        # ...but the stream's sink runs one task at a time.
        assert span > 1.8


class TestHostAsTarget:
    def test_host_transfer_is_free(self, hs):
        s = hs.stream_create(domain=0, ncores=14)
        b = hs.buffer_create(nbytes=64 << 20)
        t0 = hs.elapsed()
        hs.enqueue_xfer(s, b)
        hs.thread_synchronize()
        # Only enqueue + sync overheads; no wire time.
        assert hs.elapsed() - t0 < 1e-4

    def test_host_compute_uses_host_rates(self, hs):
        hs.register_kernel("gemm", cost_fn=lambda m, n, k, *a: dgemm(m, n, k))
        s = hs.stream_create(domain=0, ncores=28)
        b = hs.buffer_create(nbytes=8 * 4000 * 4000)
        t0 = hs.elapsed()
        hs.enqueue_compute(s, "gemm", args=(4000, 4000, 4000, b.all_inout()))
        hs.thread_synchronize()
        rate = 2 * 4000**3 / (hs.elapsed() - t0) / 1e9
        assert 700 < rate < 910  # approaching HSW's 902 asymptote


class TestAllocationCosts:
    def test_card_alloc_blocks_host(self):
        cfg = RuntimeConfig(use_buffer_pool=False)
        hs = HStreams(platform=make_platform("HSW", 1), backend="sim", config=cfg)
        t0 = hs.elapsed()
        hs.buffer_create(nbytes=4 << 20, domains=[1])
        blocked = hs.elapsed() - t0
        assert blocked == pytest.approx(cfg.alloc_cost(4 << 20))

    def test_buffer_pool_amortizes_realloc(self):
        cfg = RuntimeConfig(use_buffer_pool=True)
        hs = HStreams(platform=make_platform("HSW", 1), backend="sim", config=cfg)
        b1 = hs.buffer_create(nbytes=4 << 20, domains=[1])
        hs.buffer_destroy(b1)
        t0 = hs.elapsed()
        hs.buffer_create(nbytes=4 << 20, domains=[1])  # recycled chunks
        assert hs.elapsed() - t0 == pytest.approx(0.0)

    def test_no_pool_means_realloc_pays_again(self):
        cfg = RuntimeConfig(use_buffer_pool=False)
        hs = HStreams(platform=make_platform("HSW", 1), backend="sim", config=cfg)
        b1 = hs.buffer_create(nbytes=4 << 20, domains=[1])
        hs.buffer_destroy(b1)
        t0 = hs.elapsed()
        hs.buffer_create(nbytes=4 << 20, domains=[1])
        assert hs.elapsed() - t0 == pytest.approx(cfg.alloc_cost(4 << 20))

    def test_host_alloc_is_free(self, hs):
        t0 = hs.elapsed()
        hs.buffer_create(nbytes=64 << 20)
        assert hs.elapsed() - t0 == pytest.approx(0.0)


class TestSimErrors:
    def test_compute_without_cost_raises(self, hs):
        hs.register_kernel("nocost", fn=lambda: None)
        s = hs.stream_create(domain=1, ncores=4)
        hs.enqueue_compute(s, "nocost")
        with pytest.raises(HStreamsBadArgument):
            hs.thread_synchronize()

    def test_virtual_timeout(self, hs):
        hs.register_kernel("big", cost_fn=lambda *a: fixed_cost(10.0))
        s = hs.stream_create(domain=1, ncores=61)
        b = hs.buffer_create(nbytes=8, domains=[1])
        ev = hs.enqueue_compute(s, "big", args=(b.all_inout(),))
        with pytest.raises(HStreamsTimedOut):
            hs.event_wait([ev], timeout=0.5)


class TestJitter:
    def test_jitter_is_deterministic_per_seed(self):
        def run(seed):
            cfg = RuntimeConfig(jitter=0.5, jitter_prob=0.5, seed=seed)
            hs = HStreams(platform=make_platform("HSW", 1), backend="sim", config=cfg)
            hs.register_kernel("gemm", cost_fn=lambda m, n, k, *a: dgemm(m, n, k))
            s = hs.stream_create(domain=1, ncores=61)
            b = hs.buffer_create(nbytes=1 << 20, domains=[1])
            for _ in range(10):
                hs.enqueue_compute(s, "gemm", args=(512, 512, 512, b.all_inout()))
            hs.thread_synchronize()
            return hs.elapsed()

        assert run(1) == run(1)
        assert run(1) != run(2)

    def test_jitter_only_slows(self):
        def run(jitter):
            cfg = RuntimeConfig(jitter=jitter, jitter_prob=1.0, seed=3)
            hs = HStreams(platform=make_platform("HSW", 1), backend="sim", config=cfg)
            hs.register_kernel("gemm", cost_fn=lambda m, n, k, *a: dgemm(m, n, k))
            s = hs.stream_create(domain=1, ncores=61)
            b = hs.buffer_create(nbytes=1 << 20, domains=[1])
            hs.enqueue_compute(s, "gemm", args=(1024, 1024, 1024, b.all_inout()))
            hs.thread_synchronize()
            return hs.elapsed()

        assert run(0.5) > run(0.0)
