"""Tests for the C-style hStreams API facade."""

import numpy as np
import pytest

from repro.core import api as hstr
from repro.core.errors import (
    HStreamsBadArgument,
    HStreamsNotFound,
    HStreamsNotInitialized,
)
from repro.sim.platforms import make_platform


@pytest.fixture(autouse=True)
def clean_global_runtime():
    """Every test gets a fresh process-global runtime."""
    if hstr.hStreams_IsInitialized():
        hstr.hStreams_Fini()
    yield
    if hstr.hStreams_IsInitialized():
        hstr.hStreams_Fini()


def app_init(**kw):
    return hstr.hStreams_app_init(
        2, 1, platform=make_platform("HSW", 2), backend="thread", **kw
    )


class TestLifecycle:
    def test_api_before_init_raises(self):
        with pytest.raises(HStreamsNotInitialized):
            hstr.runtime()

    def test_double_init_rejected(self):
        hstr.hStreams_Init(backend="thread")
        with pytest.raises(HStreamsBadArgument):
            hstr.hStreams_Init(backend="thread")

    def test_fini_is_idempotent(self):
        hstr.hStreams_Init(backend="thread")
        hstr.hStreams_Fini()
        hstr.hStreams_Fini()
        assert not hstr.hStreams_IsInitialized()

    def test_app_init_creates_streams_per_domain(self):
        ids = app_init()
        assert len(ids) == 4  # 2 per card, 2 cards
        assert ids == sorted(ids)

    def test_app_init_auto_initializes(self):
        assert not hstr.hStreams_IsInitialized()
        app_init()
        assert hstr.hStreams_IsInitialized()


class TestDiscovery:
    def test_phys_domain_count(self):
        app_init()
        ncards, host = hstr.hStreams_GetNumPhysDomains()
        assert (ncards, host) == (2, 0)

    def test_domain_details(self):
        app_init()
        props = hstr.hStreams_GetPhysDomainDetails(1)
        assert props["kind"] == "knc" and props["cores"] == 61


class TestBuffersByProxyAddress:
    def test_create_and_dealloc(self):
        app_init()
        addr = hstr.hStreams_app_create_buf(nbytes=1024)
        assert addr > 0
        hstr.hStreams_DeAlloc(addr)
        with pytest.raises(Exception):
            hstr.hStreams_DeAlloc(addr)

    def test_interior_address_resolves_to_same_buffer(self):
        app_init()
        addr = hstr.hStreams_app_create_buf(nbytes=1024)
        hstr.hStreams_DeAlloc(addr + 512)  # interior address: same buffer
        rt = hstr.runtime()
        assert len(rt.buffers) == 0

    def test_xfer_endpoints_must_share_a_buffer(self):
        ids = app_init()
        a1 = hstr.hStreams_app_create_buf(nbytes=64)
        a2 = hstr.hStreams_app_create_buf(nbytes=64)
        with pytest.raises(HStreamsBadArgument):
            hstr.hStreams_app_xfer_memory(ids[0], a1, a2, 64, hstr.HSTR_SRC_TO_SINK)


class TestRoundTrip:
    def test_port_shaped_program(self):
        """A program shaped like the paper's C examples: xfer, invoke
        with scalar + heap args, event wait, xfer back, sync."""
        ids = app_init()
        hstr.hStreams_RegisterSinkFunction(
            "scale", fn=lambda f, buf: np.multiply(buf, f, out=buf)
        )
        data = np.arange(16.0)
        addr = hstr.hStreams_app_create_buf(array=data)
        s = ids[0]
        hstr.hStreams_app_xfer_memory(s, addr, addr, data.nbytes, hstr.HSTR_SRC_TO_SINK)
        ev = hstr.hStreams_app_invoke(s, "scale", scalar_args=(3.0,),
                                      heap_args=[addr], heap_nbytes=[data.nbytes])
        hstr.hStreams_app_event_wait([ev])
        hstr.hStreams_app_xfer_memory(s, addr, addr, data.nbytes, hstr.HSTR_SINK_TO_SRC)
        hstr.hStreams_app_thread_sync()
        np.testing.assert_array_equal(data, 3.0 * np.arange(16.0))

    def test_invoke_with_scalars_and_heap_args(self):
        ids = app_init()
        hstr.hStreams_RegisterSinkFunction(
            "fill", fn=lambda v, buf: buf.view(np.float64).fill(v)
        )
        data = np.zeros(8)
        addr = hstr.hStreams_app_create_buf(array=data)
        s = ids[0]
        hstr.hStreams_app_invoke(s, "fill", scalar_args=(7.0,), heap_args=[addr])
        hstr.hStreams_app_xfer_memory(s, addr, addr, 64, hstr.HSTR_SINK_TO_SRC)
        hstr.hStreams_app_thread_sync()
        np.testing.assert_array_equal(data, 7.0 * np.ones(8))

    def test_memset_memcpy(self):
        ids = app_init()
        s = ids[0]
        data = np.zeros(16, dtype=np.uint8)
        other = np.zeros(16, dtype=np.uint8)
        a1 = hstr.hStreams_app_create_buf(array=data)
        a2 = hstr.hStreams_app_create_buf(array=other)
        hstr.hStreams_app_memset(s, a1, 0xAB, 16)
        hstr.hStreams_app_memcpy(s, a2, a1, 16)
        hstr.hStreams_app_xfer_memory(s, a2, a2, 16, hstr.HSTR_SINK_TO_SRC)
        hstr.hStreams_app_thread_sync()
        assert (other == 0xAB).all()

    def test_app_dgemm(self):
        ids = app_init()
        s = ids[0]
        rng = np.random.default_rng(0)
        A, B = rng.random((4, 3)), rng.random((3, 5))
        C = np.zeros((4, 5))
        aa = hstr.hStreams_app_create_buf(array=A)
        ab = hstr.hStreams_app_create_buf(array=B)
        ac = hstr.hStreams_app_create_buf(array=C)
        for addr, arr in [(aa, A), (ab, B), (ac, C)]:
            hstr.hStreams_app_xfer_memory(s, addr, addr, arr.nbytes,
                                          hstr.HSTR_SRC_TO_SINK)
        hstr.hStreams_app_dgemm(s, 4, 5, 3, 2.0, aa, ab, 0.0, ac)
        hstr.hStreams_app_xfer_memory(s, ac, ac, C.nbytes, hstr.HSTR_SINK_TO_SRC)
        hstr.hStreams_app_thread_sync()
        np.testing.assert_allclose(C, 2.0 * A @ B, rtol=1e-12)


class TestCoreApi:
    def test_stream_create_and_sync(self):
        hstr.hStreams_Init(platform=make_platform("HSW", 1), backend="thread")
        sid = hstr.hStreams_StreamCreate(domain=1, ncores=8)
        hstr.hStreams_RegisterSinkFunction("noop", fn=lambda: None)
        hstr.hStreams_EnqueueCompute(sid, "noop")
        hstr.hStreams_StreamSynchronize(sid)
        hstr.hStreams_ThreadSynchronize()

    def test_unknown_stream_id(self):
        hstr.hStreams_Init(backend="thread")
        with pytest.raises(HStreamsNotFound):
            hstr.hStreams_StreamSynchronize(99)

    def test_alloc1d_eager_domains(self):
        hstr.hStreams_Init(platform=make_platform("HSW", 1), backend="thread")
        addr = hstr.hStreams_Alloc1D(4096, domains=[1])
        buf, _ = hstr.runtime().proxy_space.resolve(addr)
        assert buf.instantiated_in(1)

    def test_event_stream_wait_with_addr_scope(self):
        hstr.hStreams_Init(platform=make_platform("HSW", 2), backend="thread")
        s1 = hstr.hStreams_StreamCreate(domain=1, ncores=8)
        s2 = hstr.hStreams_StreamCreate(domain=2, ncores=8)
        hstr.hStreams_RegisterSinkFunction("noop", fn=lambda *a: None)
        a1 = hstr.hStreams_Alloc1D(64)
        ev = hstr.hStreams_EnqueueData1D(s1, a1, 64, hstr.HSTR_SRC_TO_SINK)
        hstr.hStreams_EventStreamWait(s2, [ev], addrs=[a1])
        hstr.hStreams_ThreadSynchronize()

    def test_enqueue_data1d_partial_range(self):
        hstr.hStreams_Init(platform=make_platform("HSW", 1), backend="thread")
        sid = hstr.hStreams_StreamCreate(domain=1, ncores=8)
        addr = hstr.hStreams_Alloc1D(1024)
        ev = hstr.hStreams_EnqueueData1D(sid, addr + 256, 128, hstr.HSTR_SRC_TO_SINK)
        hstr.hStreams_EventWait([ev])
        assert ev.is_complete()

    def test_heap_nbytes_mismatch(self):
        hstr.hStreams_Init(backend="thread")
        sid = hstr.hStreams_StreamCreate(domain=1, ncores=4)
        hstr.hStreams_RegisterSinkFunction("noop", fn=lambda *a: None)
        addr = hstr.hStreams_Alloc1D(64)
        with pytest.raises(HStreamsBadArgument):
            hstr.hStreams_app_invoke(sid, "noop", heap_args=[addr],
                                     heap_nbytes=[1, 2])
