"""Failure semantics: poison propagation, error accumulation, sticky
failure state, timeouts, retry-with-backoff, and fault injection.

Every observable behavior is exercised on both executing backends —
the acceptance bar is that a failing program looks the same under the
thread backend (real threads, wall time) and the sim backend (virtual
time), modulo the clock.
"""

import time

import pytest

from repro import (
    FaultPlan,
    FaultSpec,
    HStreams,
    InjectedFault,
    RuntimeConfig,
    make_platform,
    mark_transient,
)
from repro.core.errors import HStreamsCancelled, HStreamsTimedOut
from repro.sim.kernels import dgemm


def sim_runtime(**kw):
    return HStreams(platform=make_platform("HSW", 1), backend="sim",
                    trace=False, **kw)


def thread_runtime(**kw):
    return HStreams(platform=make_platform("HSW", 1), backend="thread",
                    trace=False, **kw)


def runtime(backend, **kw):
    return thread_runtime(**kw) if backend == "thread" else sim_runtime(**kw)


def boom(*a):
    raise RuntimeError("kernel exploded")


def register(hs, name, fn):
    """A kernel that runs under both backends (trivial sim cost)."""
    hs.register_kernel(name, fn=fn, cost_fn=lambda *a: dgemm(64, 64, 64))


def arm_failure(hs, kernel, times=1, transient=False):
    """Arm the first execution of ``kernel`` to raise an InjectedFault.

    The sim backend replays a cost model rather than running kernel
    functions, so backend-parametrized failure tests inject their
    faults — the only failure mechanism with identical semantics on
    both backends.
    """
    from repro.core.faults import inject_faults

    return inject_faults(hs, FaultPlan(specs=(
        FaultSpec(kind="compute", kernel=kernel, nth=1, times=times,
                  transient=transient),
    )))


class TestPoison:
    @pytest.mark.parametrize("backend", ["thread", "sim"])
    def test_transitive_chain_is_cancelled(self, backend):
        hs = runtime(backend)
        ran = []
        register(hs, "work", lambda x: None)
        register(hs, "step", lambda x: ran.append(1))
        arm_failure(hs, "work")
        s = hs.stream_create(domain=1, ncores=4)
        buf = hs.buffer_create(nbytes=64)
        op = buf.all_inout()
        hs.enqueue_compute(s, "work", args=(op,))
        evs = [hs.enqueue_compute(s, "step", args=(op,)) for _ in range(3)]
        with pytest.raises(InjectedFault, match="injected fault"):
            hs.thread_synchronize()
        assert ran == []  # no dependent kernel ever executed
        # Events of cancelled actions still fire: host waits never hang.
        assert all(ev.is_complete() for ev in evs)
        m = hs.metrics()["actions"]
        assert m["failed"] == 1
        assert m["cancelled"] == 3
        assert m["completed"] == 0
        states = {r.state for r in hs.metrics()["records"]}
        assert states == {"failed", "cancelled"}
        hs.clear_failure()
        hs.fini()

    @pytest.mark.parametrize("backend", ["thread", "sim"])
    def test_cross_stream_dependent_is_cancelled(self, backend):
        hs = runtime(backend)
        ran = []
        register(hs, "work", lambda x: None)
        register(hs, "consume", lambda x: ran.append(1))
        arm_failure(hs, "work")
        s1 = hs.stream_create(domain=1, ncores=2)
        s2 = hs.stream_create(domain=1, ncores=2)
        b1 = hs.buffer_create(nbytes=64)
        b2 = hs.buffer_create(nbytes=64)
        ev = hs.enqueue_compute(s1, "work", args=(b1.all_inout(),))
        hs.event_stream_wait(s2, [ev])  # cross-stream ordering edge
        hs.enqueue_compute(s2, "consume", args=(b2.all_inout(),))
        with pytest.raises(InjectedFault, match="injected fault"):
            hs.thread_synchronize()
        assert ran == []
        m = hs.metrics()["actions"]
        assert m["failed"] == 1
        assert m["cancelled"] == 2  # the sync action and the consumer
        hs.clear_failure()
        hs.fini()

    @pytest.mark.parametrize("backend", ["thread", "sim"])
    def test_cancellation_error_names_root_cause(self, backend):
        hs = runtime(backend)
        register(hs, "work", lambda x: None)
        register(hs, "step", lambda x: None)
        arm_failure(hs, "work")
        s = hs.stream_create(domain=1, ncores=4)
        buf = hs.buffer_create(nbytes=64)
        op = buf.all_inout()
        hs.enqueue_compute(s, "work", args=(op,))
        dep = hs.enqueue_compute(s, "step", args=(op,))
        with pytest.raises(InjectedFault):
            hs.thread_synchronize()
        assert dep.record.state == "cancelled"
        assert "injected fault" in dep.record.error
        hs.clear_failure()
        hs.fini()

    @pytest.mark.parametrize("backend", ["thread", "sim"])
    def test_enqueue_after_failure_is_poisoned(self, backend):
        hs = runtime(backend)
        ran = []
        register(hs, "work", lambda x: None)
        register(hs, "step", lambda x: ran.append(1))
        arm_failure(hs, "work")
        s = hs.stream_create(domain=1, ncores=4)
        buf = hs.buffer_create(nbytes=64)
        op = buf.all_inout()
        hs.enqueue_compute(s, "work", args=(op,))
        with pytest.raises(InjectedFault):
            hs.thread_synchronize()
        # The producer already failed and folded out of the graph, but
        # the new action conflicts with the poisoned footprint: it is
        # cancelled deterministically, not silently run on bad data.
        late = hs.enqueue_compute(s, "step", args=(op,))
        assert late.record.state == "cancelled"
        assert ran == []
        # After acknowledging, the same enqueue runs normally.
        hs.clear_failure()
        ok = hs.enqueue_compute(s, "step", args=(op,))
        hs.thread_synchronize()
        assert ok.record.state == "complete"
        # Only the thread backend executes kernel functions.
        assert ran == ([1] if backend == "thread" else [])
        hs.fini()


class TestErrorAccumulation:
    @pytest.mark.parametrize("backend", ["thread", "sim"])
    def test_all_errors_kept_first_raised(self, backend):
        from repro.core.faults import inject_faults

        hs = runtime(backend)
        register(hs, "work_a", lambda x: None)
        register(hs, "work_b", lambda x: None)
        inject_faults(hs, FaultPlan(specs=(
            FaultSpec(kind="compute", kernel="work_a", nth=1,
                      message="failure A"),
            FaultSpec(kind="compute", kernel="work_b", nth=1,
                      message="failure B"),
        )))
        s1 = hs.stream_create(domain=1, ncores=2)
        s2 = hs.stream_create(domain=1, ncores=2)
        b1 = hs.buffer_create(nbytes=64)
        b2 = hs.buffer_create(nbytes=64)
        hs.enqueue_compute(s1, "work_a", args=(b1.all_inout(),))
        hs.enqueue_compute(s2, "work_b", args=(b2.all_inout(),))
        with pytest.raises(InjectedFault) as exc_info:
            hs.thread_synchronize()
        # Both independent failures were kept, none swallowed; the
        # raised error carries the full ledger.
        assert len(hs.failure_errors()) == 2
        assert exc_info.value.errors == hs.failure_errors()
        assert exc_info.value is hs.failure_errors()[0]
        hs.clear_failure()
        hs.fini()

    @pytest.mark.parametrize("backend", ["thread", "sim"])
    def test_failure_is_sticky_until_cleared(self, backend):
        hs = runtime(backend)
        register(hs, "work", lambda x: None)
        arm_failure(hs, "work")
        s = hs.stream_create(domain=1, ncores=4)
        buf = hs.buffer_create(nbytes=64)
        hs.enqueue_compute(s, "work", args=(buf.all_inout(),))
        with pytest.raises(InjectedFault):
            hs.thread_synchronize()
        assert hs.failed
        # Every later synchronization re-raises until acknowledged.
        with pytest.raises(InjectedFault):
            hs.thread_synchronize()
        with pytest.raises(InjectedFault):
            hs.stream_synchronize(s)
        dropped = hs.clear_failure()
        assert len(dropped) == 1 and not hs.failed
        hs.thread_synchronize()  # clean again
        hs.fini()

    def test_fini_raises_unobserved_failure(self):
        hs = thread_runtime()
        register(hs, "boom", boom)
        s = hs.stream_create(domain=1, ncores=4)
        buf = hs.buffer_create(nbytes=64)
        hs.enqueue_compute(s, "boom", args=(buf.all_inout(),))
        with pytest.raises(RuntimeError, match="kernel exploded"):
            hs.fini()  # never synchronized: fini must not swallow it

    def test_fini_suppresses_already_observed_failure(self):
        hs = thread_runtime()
        register(hs, "boom", boom)
        s = hs.stream_create(domain=1, ncores=4)
        buf = hs.buffer_create(nbytes=64)
        hs.enqueue_compute(s, "boom", args=(buf.all_inout(),))
        with pytest.raises(RuntimeError):
            hs.thread_synchronize()
        hs.fini()  # handled above: fini in a finally-block is safe


class TestWaitFailureDelivery:
    def test_wait_any_raises_promptly_not_after_slowest(self):
        hs = thread_runtime()
        register(hs, "slow", lambda x: time.sleep(2.0))
        register(hs, "boom", boom)
        s1 = hs.stream_create(domain=1, ncores=2)
        s2 = hs.stream_create(domain=1, ncores=2)
        b1 = hs.buffer_create(nbytes=64)
        b2 = hs.buffer_create(nbytes=64)
        slow_ev = hs.enqueue_compute(s1, "slow", args=(b1.all_inout(),))
        fail_ev = hs.enqueue_compute(s2, "boom", args=(b2.all_inout(),))
        t0 = time.monotonic()
        with pytest.raises(RuntimeError, match="kernel exploded"):
            hs.event_wait([slow_ev, fail_ev], wait_all=False)
        # The failure surfaced while the slow kernel was still running
        # (the old wait-any loop only polled completion flags and sat on
        # the error until everything drained).
        assert time.monotonic() - t0 < 1.5
        with pytest.raises(RuntimeError):
            hs.thread_synchronize()
        hs.clear_failure()
        hs.fini()

    def test_wait_all_raises_while_spinning(self):
        hs = thread_runtime()
        register(hs, "slow", lambda x: time.sleep(2.0))
        register(hs, "boom", boom)
        s1 = hs.stream_create(domain=1, ncores=2)
        s2 = hs.stream_create(domain=1, ncores=2)
        b1 = hs.buffer_create(nbytes=64)
        b2 = hs.buffer_create(nbytes=64)
        slow_ev = hs.enqueue_compute(s1, "slow", args=(b1.all_inout(),))
        hs.enqueue_compute(s2, "boom", args=(b2.all_inout(),))
        t0 = time.monotonic()
        with pytest.raises(RuntimeError, match="kernel exploded"):
            slow_ev.wait()  # blocked on the *other* stream's failure
        assert time.monotonic() - t0 < 1.5
        with pytest.raises(RuntimeError):
            hs.thread_synchronize()
        hs.clear_failure()
        hs.fini()


class TestTimeouts:
    def test_thread_event_wait_times_out(self):
        hs = thread_runtime()
        register(hs, "slow", lambda x: time.sleep(0.5))
        s = hs.stream_create(domain=1, ncores=4)
        buf = hs.buffer_create(nbytes=64)
        ev = hs.enqueue_compute(s, "slow", args=(buf.all_inout(),))
        with pytest.raises(HStreamsTimedOut):
            ev.wait(timeout=0.05)
        hs.thread_synchronize()  # the action itself still completes
        assert ev.record.state == "complete"
        hs.fini()

    def test_thread_wait_any_times_out(self):
        hs = thread_runtime()
        register(hs, "slow", lambda x: time.sleep(0.5))
        s = hs.stream_create(domain=1, ncores=4)
        b1 = hs.buffer_create(nbytes=64)
        b2 = hs.buffer_create(nbytes=64)
        e1 = hs.enqueue_compute(s, "slow", args=(b1.all_inout(),))
        e2 = hs.enqueue_compute(s, "slow", args=(b2.all_inout(),))
        with pytest.raises(HStreamsTimedOut):
            hs.event_wait([e1, e2], wait_all=False, timeout=0.05)
        hs.thread_synchronize()
        hs.fini()

    def test_thread_synchronize_times_out(self):
        hs = thread_runtime()
        register(hs, "slow", lambda x: time.sleep(0.5))
        s = hs.stream_create(domain=1, ncores=4)
        buf = hs.buffer_create(nbytes=64)
        hs.enqueue_compute(s, "slow", args=(buf.all_inout(),))
        with pytest.raises(HStreamsTimedOut):
            hs.thread_synchronize(timeout=0.05)
        hs.thread_synchronize()
        hs.fini()

    def test_sim_event_wait_times_out_at_virtual_deadline(self):
        hs = sim_runtime()
        hs.register_kernel("gemm", cost_fn=lambda m, n, k, *a: dgemm(m, n, k))
        s = hs.stream_create(domain=1, ncores=61)
        buf = hs.buffer_create(nbytes=1 << 20, domains=[1])
        ev = hs.enqueue_compute(s, "gemm", args=(4096, 4096, 4096, buf.all_inout()))
        with pytest.raises(HStreamsTimedOut):
            ev.wait(timeout=1e-4)
        at_timeout = hs.elapsed()
        hs.thread_synchronize()
        assert ev.record.state == "complete"
        # The full gemm takes far longer than the timeout deadline.
        assert hs.elapsed() > at_timeout
        hs.fini()

    def test_sim_timed_wait_does_not_advance_to_deadline_on_success(self):
        # Regression: the old sim wait ran the engine to the *full*
        # deadline even when the event fired almost immediately,
        # inflating virtual time by the whole timeout.
        hs = sim_runtime()
        hs.register_kernel("gemm", cost_fn=lambda m, n, k, *a: dgemm(m, n, k))
        s = hs.stream_create(domain=1, ncores=61)
        buf = hs.buffer_create(nbytes=1 << 16, domains=[1])
        ev = hs.enqueue_compute(s, "gemm", args=(64, 64, 64, buf.all_inout()))
        ev.wait(timeout=10.0)
        assert ev.is_complete()
        assert hs.elapsed() < 1.0  # nowhere near the 10 s deadline
        hs.fini()

    def test_sim_thread_synchronize_times_out(self):
        hs = sim_runtime()
        hs.register_kernel("gemm", cost_fn=lambda m, n, k, *a: dgemm(m, n, k))
        s = hs.stream_create(domain=1, ncores=61)
        buf = hs.buffer_create(nbytes=1 << 20, domains=[1])
        hs.enqueue_compute(s, "gemm", args=(4096, 4096, 4096, buf.all_inout()))
        with pytest.raises(HStreamsTimedOut):
            hs.thread_synchronize(timeout=1e-4)
        hs.thread_synchronize()
        hs.fini()

    @pytest.mark.parametrize("backend", ["thread", "sim"])
    def test_wait_timeout_config_default_applies(self, backend):
        cfg = RuntimeConfig(wait_timeout_s=1e-4 if backend == "sim" else 0.05)
        hs = runtime(backend, config=cfg)
        if backend == "thread":
            register(hs, "slow", lambda x: time.sleep(0.5))
            s = hs.stream_create(domain=1, ncores=4)
            buf = hs.buffer_create(nbytes=64)
            ev = hs.enqueue_compute(s, "slow", args=(buf.all_inout(),))
        else:
            hs.register_kernel("slow", cost_fn=lambda *a: dgemm(4096, 4096, 4096))
            s = hs.stream_create(domain=1, ncores=61)
            buf = hs.buffer_create(nbytes=1 << 20, domains=[1])
            ev = hs.enqueue_compute(s, "slow", args=(buf.all_inout(),))
        with pytest.raises(HStreamsTimedOut):
            ev.wait()  # no explicit timeout: the config default applies
        # Draining needs an explicit budget longer than the work.
        hs.thread_synchronize(timeout=10.0 if backend == "sim" else 5.0)
        hs.fini()

    @pytest.mark.parametrize("backend", ["thread", "sim"])
    def test_action_timeout_fails_the_action(self, backend):
        cfg = RuntimeConfig(action_timeout_s=1e-4 if backend == "sim" else 0.05)
        hs = runtime(backend, config=cfg)
        if backend == "thread":
            register(hs, "slow", lambda x: time.sleep(0.3))
            s = hs.stream_create(domain=1, ncores=4)
            buf = hs.buffer_create(nbytes=64)
        else:
            hs.register_kernel("slow", cost_fn=lambda *a: dgemm(4096, 4096, 4096))
            s = hs.stream_create(domain=1, ncores=61)
            buf = hs.buffer_create(nbytes=1 << 20, domains=[1])
        hs.enqueue_compute(s, "slow", args=(buf.all_inout(),))
        with pytest.raises(HStreamsTimedOut, match="action_timeout_s budget"):
            hs.thread_synchronize()
        assert hs.metrics()["actions"]["failed"] == 1
        hs.clear_failure()
        hs.fini()


class TestRetry:
    def test_thread_transient_error_is_retried(self):
        attempts = []

        def flaky(x):
            attempts.append(1)
            if len(attempts) == 1:
                raise mark_transient(RuntimeError("transient glitch"))

        hs = thread_runtime(failure_policy="retry")
        register(hs, "flaky", flaky)
        s = hs.stream_create(domain=1, ncores=4)
        buf = hs.buffer_create(nbytes=64)
        ev = hs.enqueue_compute(s, "flaky", args=(buf.all_inout(),))
        hs.thread_synchronize()
        assert len(attempts) == 2
        assert ev.record.state == "complete"
        assert ev.record.retries == 1
        m = hs.metrics()["actions"]
        assert m["retried"] == 1 and m["failed"] == 0
        hs.fini()

    def test_retry_limit_exhaustion_poisons(self):
        def always(x):
            raise mark_transient(RuntimeError("never recovers"))

        cfg = RuntimeConfig(retry_limit=2, retry_backoff_s=1e-4)
        hs = thread_runtime(failure_policy="retry", config=cfg)
        register(hs, "always", always)
        register(hs, "step", lambda x: None)
        s = hs.stream_create(domain=1, ncores=4)
        buf = hs.buffer_create(nbytes=64)
        op = buf.all_inout()
        ev = hs.enqueue_compute(s, "always", args=(op,))
        dep = hs.enqueue_compute(s, "step", args=(op,))
        with pytest.raises(RuntimeError, match="never recovers"):
            hs.thread_synchronize()
        assert ev.record.state == "failed"
        assert ev.record.retries == 2  # the cap, then poison as usual
        assert dep.record.state == "cancelled"
        hs.clear_failure()
        hs.fini()

    def test_non_transient_error_is_not_retried(self):
        hs = thread_runtime(failure_policy="retry")
        register(hs, "boom", boom)
        s = hs.stream_create(domain=1, ncores=4)
        buf = hs.buffer_create(nbytes=64)
        ev = hs.enqueue_compute(s, "boom", args=(buf.all_inout(),))
        with pytest.raises(RuntimeError, match="kernel exploded"):
            hs.thread_synchronize()
        assert ev.record.retries == 0
        hs.clear_failure()
        hs.fini()

    def test_backoff_delays_grow_and_cap(self):
        # The sim backend makes the backoff schedule observable in
        # virtual time: attempt k redispatches after
        # min(base * factor**(k-1), cap).
        cfg = RuntimeConfig(retry_backoff_s=0.1, retry_backoff_factor=2.0,
                            retry_backoff_max_s=0.15, retry_limit=3)
        hs = sim_runtime(failure_policy="retry", config=cfg)
        hs.register_kernel("flaky", cost_fn=lambda *a: dgemm(64, 64, 64))
        from repro.core.faults import inject_faults
        inject_faults(hs, FaultPlan(specs=(
            FaultSpec(kind="compute", kernel="flaky", nth=1, times=3,
                      transient=True),
        )))
        s = hs.stream_create(domain=1, ncores=61)
        buf = hs.buffer_create(nbytes=1 << 16, domains=[1])
        ev = hs.enqueue_compute(s, "flaky", args=(buf.all_inout(),))
        hs.thread_synchronize()
        assert ev.record.state == "complete"
        assert ev.record.retries == 3
        # Three backoffs: 0.1 + 0.15 (capped from 0.2) + 0.15 = 0.4 of
        # pure waiting, visible in the virtual clock.
        assert hs.elapsed() >= 0.4
        assert hs.elapsed() < 0.6
        hs.fini()

    def test_retry_backoff_never_dispatches_early(self):
        """Wall-clock backoff honors the sim's virtual schedule.

        The thread backend once trusted a single ``time.sleep(delay)``,
        which may return before the full delay under coarse OS clocks or
        interrupted waits — dispatching a retry early. It now re-checks
        a monotonic deadline and re-arms, so wall time spent backing off
        is always at least the virtual backoff the sim would model.
        """
        cfg = RuntimeConfig(retry_backoff_s=0.04, retry_backoff_factor=2.0,
                            retry_backoff_max_s=1.0, retry_limit=3)
        expected = 0.04 + 0.08  # two transient failures, then success

        hs = sim_runtime(failure_policy="retry", config=cfg)
        register(hs, "flaky", lambda x: None)
        arm_failure(hs, "flaky", times=2, transient=True)
        s = hs.stream_create(domain=1, ncores=4)
        buf = hs.buffer_create(nbytes=64)
        ev = hs.enqueue_compute(s, "flaky", args=(buf.all_inout(),))
        hs.thread_synchronize()
        assert ev.record.retries == 2
        assert hs.elapsed() >= expected
        hs.fini()

        hs = thread_runtime(failure_policy="retry", config=cfg)
        register(hs, "flaky", lambda x: None)
        arm_failure(hs, "flaky", times=2, transient=True)
        s = hs.stream_create(domain=1, ncores=4)
        buf = hs.buffer_create(nbytes=64)
        t0 = time.monotonic()
        ev = hs.enqueue_compute(s, "flaky", args=(buf.all_inout(),))
        hs.thread_synchronize()
        wall = time.monotonic() - t0
        assert ev.record.retries == 2
        assert wall >= expected
        hs.fini()


class TestFaultInjection:
    @pytest.mark.parametrize("backend", ["thread", "sim"])
    def test_transient_fault_recovers_with_retry(self, backend):
        from repro.core.faults import inject_faults

        hs = runtime(backend, failure_policy="retry")
        register(hs, "work", lambda x: None)
        injector = inject_faults(hs, FaultPlan(specs=(
            FaultSpec(kind="compute", kernel="work", nth=1, times=2,
                      transient=True),
        ), seed=3))
        s = hs.stream_create(domain=1, ncores=4)
        buf = hs.buffer_create(nbytes=64)
        ev = hs.enqueue_compute(s, "work", args=(buf.all_inout(),))
        hs.thread_synchronize()
        assert ev.record.state == "complete"
        assert ev.record.retries == 2
        assert injector.injected == 2
        assert not hs.failed
        hs.fini()

    def test_backends_report_identical_outcomes(self):
        from repro.core.faults import inject_faults

        def run(backend):
            hs = runtime(backend, failure_policy="retry")
            register(hs, "work", lambda x: None)
            inject_faults(hs, FaultPlan(specs=(
                FaultSpec(kind="compute", kernel="work", nth=2, times=1,
                          transient=True),
            ), seed=11))
            s = hs.stream_create(domain=1, ncores=4)
            buf = hs.buffer_create(nbytes=64)
            op = buf.all_inout()
            for _ in range(4):
                hs.enqueue_compute(s, "work", args=(op,))
            hs.thread_synchronize()
            m = hs.metrics()["actions"]
            hs.fini()
            return {k: m[k] for k in
                    ("enqueued", "completed", "failed", "cancelled", "retried")}

        assert run("thread") == run("sim")

    def test_permanent_fault_fails_the_run(self):
        from repro.core.faults import inject_faults

        hs = sim_runtime()
        register(hs, "work", lambda x: None)
        inject_faults(hs, FaultPlan(specs=(
            FaultSpec(kind="compute", kernel="work", nth=1),
        )))
        s = hs.stream_create(domain=1, ncores=4)
        buf = hs.buffer_create(nbytes=64)
        hs.enqueue_compute(s, "work", args=(buf.all_inout(),))
        with pytest.raises(InjectedFault, match="injected fault"):
            hs.thread_synchronize()
        hs.clear_failure()
        hs.fini()

    def test_rate_mode_is_seed_deterministic(self):
        from repro.core.faults import FaultInjector, inject_faults

        def armed_seqs(seed):
            hs = sim_runtime()
            register(hs, "work", lambda x: None)
            injector = inject_faults(hs, FaultPlan(specs=(
                FaultSpec(kind="compute", rate=0.5, transient=True),
            ), seed=seed))
            assert isinstance(injector, FaultInjector)
            s = hs.stream_create(domain=1, ncores=4)
            bufs = [hs.buffer_create(nbytes=64) for _ in range(16)]
            evs = []
            try:
                for b in bufs:
                    evs.append(hs.enqueue_compute(s, "work", args=(b.all_inout(),)))
                hs.thread_synchronize()
            except InjectedFault:
                pass
            # Seqs are global across runtimes: compare positions, not
            # absolute numbers.
            base = evs[0].action.seq
            armed = sorted(seq - base for seq in injector.armed_seqs())
            hs.clear_failure()
            hs.fini()
            return armed

        assert armed_seqs(42) == armed_seqs(42)
        assert armed_seqs(42) != armed_seqs(43)

    def test_capture_mode_keeps_plans_inert(self):
        from repro.analysis.capture import capture_session
        from repro.core.faults import inject_faults

        with capture_session() as runtimes:
            hs = HStreams(backend="sim")
            register(hs, "work", lambda x: None)
            inject_faults(hs, FaultPlan(specs=(
                FaultSpec(kind="compute", kernel="work", nth=1),
            )))
            s = hs.stream_create(domain=1, ncores=4)
            buf = hs.buffer_create(nbytes=64)
            hs.enqueue_compute(s, "work", args=(buf.all_inout(),))
            hs.thread_synchronize()  # nothing executes: nothing injects
        assert len(runtimes) == 1
        assert not hs.failed


class TestFailFast:
    @pytest.mark.parametrize("backend", ["thread", "sim"])
    def test_enqueue_after_failure_raises_original_error(self, backend):
        hs = runtime(backend, failure_policy="fail_fast")
        register(hs, "work", lambda x: None)
        register(hs, "step", lambda x: None)
        arm_failure(hs, "work")
        s = hs.stream_create(domain=1, ncores=4)
        b1 = hs.buffer_create(nbytes=64)
        b2 = hs.buffer_create(nbytes=64)
        hs.enqueue_compute(s, "work", args=(b1.all_inout(),))
        with pytest.raises(InjectedFault, match="injected fault"):
            hs.thread_synchronize()
        # fail_fast rejects *any* new work, even on untouched buffers.
        with pytest.raises(InjectedFault, match="injected fault"):
            hs.enqueue_compute(s, "step", args=(b2.all_inout(),))
        hs.clear_failure()
        ok = hs.enqueue_compute(s, "step", args=(b2.all_inout(),))
        hs.thread_synchronize()
        assert ok.record.state == "complete"
        hs.fini()


class TestMemoryRollback:
    def test_failed_transfer_is_not_trusted_for_elision(self):
        from repro.core.faults import inject_faults

        hs = thread_runtime()
        inject_faults(hs, FaultPlan(specs=(
            FaultSpec(kind="xfer", nth=1),
        )))
        s = hs.stream_create(domain=1, ncores=4)
        buf = hs.buffer_create(nbytes=256, domains=[1])
        with pytest.raises(InjectedFault):
            hs.enqueue_xfer(s, buf)
            hs.thread_synchronize()
        hs.clear_failure()
        # The failed transfer's writes were rolled back: the re-issued
        # transfer must really move the bytes, not be elided against a
        # poisoned coherence state.
        hs.enqueue_xfer(s, buf)
        hs.thread_synchronize()
        assert hs.metrics()["memory"]["elided_transfers"] == 0
        # A *successful* transfer, by contrast, does enable elision.
        hs.enqueue_xfer(s, buf)
        hs.thread_synchronize()
        assert hs.metrics()["memory"]["elided_transfers"] == 1
        hs.fini()

    def test_cancelled_compute_leaves_instance_clean(self):
        hs = thread_runtime()
        register(hs, "boom", boom)
        register(hs, "write", lambda x: None)
        s = hs.stream_create(domain=1, ncores=4)
        buf = hs.buffer_create(nbytes=256, domains=[1])
        op = buf.all_inout()
        hs.enqueue_compute(s, "boom", args=(op,))
        hs.enqueue_compute(s, "write", args=(op,))  # will be cancelled
        with pytest.raises(RuntimeError):
            hs.thread_synchronize()
        hs.clear_failure()
        # The cancelled writer never dirtied the instance: evicting it
        # is legal (no unsaved sink-side data to lose).
        hs.buffer_evict(buf, domain=1)
        hs.fini()


class TestDiagnostics:
    def test_online_checker_reports_failed_and_cancelled(self):
        from repro.analysis import attach_checker

        hs = thread_runtime()
        checker = attach_checker(hs)
        register(hs, "boom", boom)
        register(hs, "step", lambda x: None)
        s = hs.stream_create(domain=1, ncores=4)
        buf = hs.buffer_create(nbytes=64)
        op = buf.all_inout()
        hs.enqueue_compute(s, "boom", args=(op,))
        hs.enqueue_compute(s, "step", args=(op,))
        with pytest.raises(RuntimeError):
            hs.thread_synchronize()
        hs.clear_failure()
        rules = {d.rule for d in checker.finish()}
        assert "failed-action" in rules
        assert "cancelled-action" in rules
        by_rule = {d.rule: d for d in checker.diagnostics}
        assert "kernel exploded" in by_rule["failed-action"].message
        hs.fini()


class TestCancelledExceptionType:
    @pytest.mark.parametrize("backend", ["thread", "sim"])
    def test_cancelled_record_and_exception_shape(self, backend):
        hs = runtime(backend)
        register(hs, "work", lambda x: None)
        register(hs, "step", lambda x: None)
        arm_failure(hs, "work")
        s = hs.stream_create(domain=1, ncores=4)
        buf = hs.buffer_create(nbytes=64)
        op = buf.all_inout()
        hs.enqueue_compute(s, "work", args=(op,))
        hs.enqueue_compute(s, "step", args=(op,))
        with pytest.raises(InjectedFault):
            hs.thread_synchronize()
        # The ledger holds only the root cause; cancellations are
        # recorded per-action as HStreamsCancelled with __cause__ set.
        assert len(hs.failure_errors()) == 1
        node_errors = [r.error for r in hs.metrics()["records"]
                       if r.state == "cancelled"]
        assert len(node_errors) == 1
        assert HStreamsCancelled.code == "HSTR_RESULT_CANCELLED"
        hs.clear_failure()
        hs.fini()
