"""Property-based semantics tests: out-of-order execution must be
invisible (paper §II: actions "are free to execute and complete out of
order, as long as the effect ... is not visible at the semantic level").

Strategy: generate random single-stream programs of read-modify-write
actions over overlapping ranges of a buffer, run them through the thread
backend (which really reorders independent actions), and compare the
final memory against naive sequential execution. Any dependence the
runtime fails to enforce shows up as a wrong value.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro import HStreams, OperandMode, XferDirection, make_platform
from repro.sim.kernels import dgemm

N_CELLS = 16  # float64 cells in the fuzzed buffer


@st.composite
def programs(draw):
    """A random list of (op, start, length, operand-value) actions."""
    n_actions = draw(st.integers(1, 24))
    prog = []
    for _ in range(n_actions):
        op = draw(st.sampled_from(["fill", "add", "scale", "neg"]))
        start = draw(st.integers(0, N_CELLS - 1))
        length = draw(st.integers(1, N_CELLS - start))
        value = float(draw(st.integers(-3, 3)))
        prog.append((op, start, length, value))
    return prog


def apply_sequentially(prog):
    """The semantic reference: plain in-order execution."""
    data = np.zeros(N_CELLS)
    for op, start, length, value in prog:
        view = data[start : start + length]
        if op == "fill":
            view[:] = value
        elif op == "add":
            view += value
        elif op == "scale":
            view *= value
        elif op == "neg":
            view[:] = -view
    return data


KERNELS = {
    "fill": lambda x, v: x.__setitem__(slice(None), v),
    "add": lambda x, v: np.add(x, v, out=x),
    "scale": lambda x, v: np.multiply(x, v, out=x),
    "neg": lambda x, v: np.negative(x, out=x),
}


def run_streamed(prog, strict=False, domain=1):
    hs = HStreams(platform=make_platform("HSW", 1), backend="thread", trace=False)
    for name, fn in KERNELS.items():
        hs.register_kernel(name, fn=fn)
    s = hs.stream_create(domain=domain, ncores=8, strict_fifo=strict)
    data = np.zeros(N_CELLS)
    buf = hs.wrap(data)
    hs.enqueue_xfer(s, buf)
    for op, start, length, value in prog:
        operand = buf.tensor((length,), offset=8 * start, mode=OperandMode.INOUT)
        hs.enqueue_compute(s, op, args=(operand, value))
    hs.enqueue_xfer(s, buf, XferDirection.SINK_TO_SRC)
    hs.thread_synchronize()
    hs.fini()
    return data


class TestFifoSemanticsFuzz:
    @settings(max_examples=40, deadline=None)
    @given(prog=programs())
    def test_relaxed_stream_matches_sequential(self, prog):
        np.testing.assert_array_equal(run_streamed(prog), apply_sequentially(prog))

    @settings(max_examples=15, deadline=None)
    @given(prog=programs())
    def test_strict_stream_matches_sequential(self, prog):
        np.testing.assert_array_equal(
            run_streamed(prog, strict=True), apply_sequentially(prog)
        )

    @settings(max_examples=15, deadline=None)
    @given(prog=programs())
    def test_host_as_target_matches_sequential(self, prog):
        np.testing.assert_array_equal(
            run_streamed(prog, domain=0), apply_sequentially(prog)
        )


class TestMultiStreamFuzz:
    @settings(max_examples=20, deadline=None)
    @given(
        chunks=st.lists(
            st.tuples(st.integers(0, 3), st.floats(-2, 2, allow_nan=False)),
            min_size=2, max_size=16,
        )
    )
    def test_disjoint_streams_each_match_sequential(self, chunks):
        """Four streams own four disjoint quarters; each quarter's final
        state must match its own sequential history."""
        hs = HStreams(platform=make_platform("HSW", 1), backend="thread", trace=False)
        hs.register_kernel("add", fn=KERNELS["add"])
        streams = [hs.stream_create(domain=1, ncores=4) for _ in range(4)]
        data = np.zeros(N_CELLS)
        buf = hs.wrap(data)
        quarter = N_CELLS // 4
        # Each stream moves only its own quarter: there are no implicit
        # dependences between streams, so a full-buffer transfer here
        # would legitimately race with other streams' work (paper §II).
        for q, s in enumerate(streams):
            hs.enqueue_xfer(s, buf.range(8 * q * quarter, 8 * quarter))
        expect = np.zeros(N_CELLS)
        for q, v in chunks:
            start = q * quarter
            operand = buf.tensor((quarter,), offset=8 * start,
                                 mode=OperandMode.INOUT)
            hs.enqueue_compute(streams[q], "add", args=(operand, v))
            expect[start : start + quarter] += v
        # Retrieve each quarter through its owning stream.
        for q in range(4):
            hs.enqueue_xfer(
                streams[q],
                buf.range(8 * q * quarter, 8 * quarter),
                XferDirection.SINK_TO_SRC,
            )
        hs.thread_synchronize()
        hs.fini()
        np.testing.assert_allclose(data, expect)


class TestSimDeterminismFuzz:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 1000),
        n_actions=st.integers(1, 30),
        n_streams=st.integers(1, 4),
    )
    def test_random_programs_are_reproducible(self, seed, n_actions, n_streams):
        def run():
            rng = np.random.default_rng(seed)
            hs = HStreams(platform=make_platform("HSW", 1), backend="sim",
                          trace=False)
            hs.register_kernel("gemm", cost_fn=lambda m, n, k, *a: dgemm(m, n, k))
            streams = [hs.stream_create(domain=1, ncores=61 // n_streams)
                       for _ in range(n_streams)]
            bufs = [hs.buffer_create(nbytes=1 << 18) for _ in range(4)]
            for _ in range(n_actions):
                s = streams[int(rng.integers(0, n_streams))]
                b = bufs[int(rng.integers(0, 4))]
                if rng.random() < 0.4:
                    hs.enqueue_xfer(s, b)
                else:
                    dim = int(rng.integers(64, 512))
                    hs.enqueue_compute(s, "gemm", args=(dim, dim, dim, b.all_inout()))
            hs.thread_synchronize()
            return hs.elapsed()

        assert run() == run()


class TestSchedulerOrderFuzz:
    """The sim-backend half of the equivalence property: the scheduler's
    lifecycle records must show every conflicting pair executing in
    enqueue order (the FIFO semantic), for random programs through the
    action graph."""

    @settings(max_examples=25, deadline=None)
    @given(prog=programs())
    def test_conflicting_pairs_respect_enqueue_order(self, prog):
        from repro.sim.kernels import KernelCost

        hs = HStreams(platform=make_platform("HSW", 1), backend="sim", trace=False)
        cost = KernelCost(kernel="rmw", flops=1e6, size=float(N_CELLS))
        for name in KERNELS:
            hs.register_kernel(name, cost_fn=lambda *a, c=cost: c)
        s = hs.stream_create(domain=1, ncores=16)
        buf = hs.buffer_create(nbytes=8 * N_CELLS, domains=[1])
        ranges = [(0, 8 * N_CELLS)]  # the initial whole-buffer transfer
        hs.enqueue_xfer(s, buf)
        for op, start, length, value in prog:
            operand = buf.tensor((length,), offset=8 * start, mode=OperandMode.INOUT)
            hs.enqueue_compute(s, op, args=(operand, value))
            ranges.append((8 * start, 8 * (start + length)))
        hs.thread_synchronize()
        recs = sorted(hs.metrics()["records"], key=lambda r: r.seq)
        assert len(recs) == len(prog) + 1
        assert all(r.state == "complete" for r in recs)
        for j in range(len(recs)):
            for i in range(j):
                a0, a1 = ranges[i]
                b0, b1 = ranges[j]
                if a0 < b1 and b0 < a1:  # overlapping INOUT: must order
                    assert recs[j].t_start >= recs[i].t_end
        hs.fini()


class TestThreadBackendStress:
    def test_many_streams_many_actions(self):
        """16 streams x 64 actions with a shared accumulator each."""
        hs = HStreams(platform=make_platform("HSW", 2), backend="thread", trace=False)
        hs.register_kernel("inc", fn=lambda x: np.add(x, 1.0, out=x))
        streams = [hs.stream_create(domain=1 + i % 2, ncores=4) for i in range(16)]
        datas, bufs = [], []
        for s in streams:
            d = np.zeros(4)
            b = hs.wrap(d)
            hs.enqueue_xfer(s, b)
            datas.append(d)
            bufs.append(b)
        for _ in range(64):
            for s, b in zip(streams, bufs):
                hs.enqueue_compute(s, "inc", args=(b.tensor((4,)),))
        for s, b in zip(streams, bufs):
            hs.enqueue_xfer(s, b, XferDirection.SINK_TO_SRC)
        hs.thread_synchronize()
        hs.fini()
        for d in datas:
            np.testing.assert_array_equal(d, 64.0 * np.ones(4))

    def test_interleaved_cross_stream_chains(self):
        """A value ping-pongs between two streams via event_stream_wait;
        every hop must observe the previous hop's write."""
        hs = HStreams(platform=make_platform("HSW", 2), backend="thread", trace=False)
        hs.register_kernel("double", fn=lambda x: np.multiply(x, 2.0, out=x))
        s1 = hs.stream_create(domain=1, ncores=4)
        s2 = hs.stream_create(domain=2, ncores=4)
        data = np.ones(1)
        buf = hs.wrap(data)
        ev = hs.enqueue_xfer(s1, buf)
        for hop in range(8):
            src, dst = (s1, s2) if hop % 2 == 0 else (s2, s1)
            ev = hs.enqueue_compute(src, "double", args=(buf.tensor((1,)),))
            # Move the value: src sink -> host -> dst sink.
            ev = hs.enqueue_xfer(src, buf, XferDirection.SINK_TO_SRC)
            hs.event_stream_wait(dst, [ev], operands=[buf])
            ev = hs.enqueue_xfer(dst, buf)
        hs.thread_synchronize()
        # 8 doublings land in the sink of the final destination; pull it.
        final = s1 if 8 % 2 == 0 else s2
        hs.enqueue_xfer(final, buf, XferDirection.SINK_TO_SRC)
        hs.thread_synchronize()
        hs.fini()
        assert data[0] == 2.0**8
