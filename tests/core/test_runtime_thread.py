"""Integration tests: the hStreams runtime on the thread backend.

These exercise the library as a real runtime — kernels actually execute,
transfers actually copy bytes between per-domain address spaces.
"""

import time

import numpy as np
import pytest

from repro import HStreams, OperandMode, RuntimeConfig, XferDirection, make_platform
from repro.core.errors import (
    HStreamsBadArgument,
    HStreamsNotFound,
    HStreamsNotInitialized,
    HStreamsOutOfMemory,
    HStreamsTimedOut,
)


@pytest.fixture()
def hs():
    runtime = HStreams(
        platform=make_platform("HSW", ncards=2), backend="thread", trace=False
    )
    yield runtime
    runtime.fini()


class TestLifecycle:
    def test_domains_discoverable(self, hs):
        assert hs.ndomains == 3
        assert hs.domain(0).is_host
        assert hs.domain(1).props["kind"] == "knc"

    def test_missing_domain(self, hs):
        with pytest.raises(HStreamsNotFound):
            hs.domain(9)

    def test_api_after_fini_raises(self):
        runtime = HStreams(backend="thread", trace=False)
        runtime.fini()
        with pytest.raises(HStreamsNotInitialized):
            runtime.stream_create()

    def test_context_manager(self):
        with HStreams(backend="thread", trace=False) as runtime:
            assert runtime.ndomains >= 1
        with pytest.raises(HStreamsNotInitialized):
            runtime.buffer_create(nbytes=8)


class TestStreamCreation:
    def test_streams_are_integers(self, hs):
        s0 = hs.stream_create(domain=1, ncores=10)
        s1 = hs.stream_create(domain=1, ncores=10)
        assert (s0.id, s1.id) == (0, 1)

    def test_masks_do_not_overlap_until_wraparound(self, hs):
        s0 = hs.stream_create(domain=1, ncores=30)
        s1 = hs.stream_create(domain=1, ncores=30)
        assert set(s0.cpu_mask).isdisjoint(s1.cpu_mask)

    def test_wraparound_oversubscribes(self, hs):
        hs.stream_create(domain=1, ncores=60)
        s = hs.stream_create(domain=1, ncores=10)  # wraps
        assert len(s.cpu_mask) == 10

    def test_explicit_mask(self, hs):
        s = hs.stream_create(domain=0, cpu_mask=[0, 2, 4])
        assert s.cpu_mask == (0, 2, 4)
        assert s.host_as_target

    def test_mask_and_ncores_conflict(self, hs):
        with pytest.raises(HStreamsBadArgument):
            hs.stream_create(domain=0, ncores=2, cpu_mask=[0, 1])

    def test_mask_out_of_range(self, hs):
        with pytest.raises(HStreamsBadArgument):
            hs.stream_create(domain=1, cpu_mask=[1000])

    def test_app_init_partitions_cards_evenly(self, hs):
        streams = hs.app_init(streams_per_domain=4)
        assert len(streams) == 8  # 4 per card, 2 cards
        knc_cores = hs.domain(1).device.total_cores
        for s in streams:
            assert s.width == knc_cores // 4

    def test_app_init_with_host_and_oversubscription(self, hs):
        streams = hs.app_init(streams_per_domain=2, oversubscription=2, use_host=True)
        assert len(streams) == 2 * 2 * 3
        # Oversubscribed logical streams share a place's mask.
        assert streams[0].cpu_mask == streams[1].cpu_mask

    def test_app_init_too_many_streams(self, hs):
        with pytest.raises(HStreamsBadArgument):
            hs.app_init(streams_per_domain=100)

    def test_streams_in(self, hs):
        hs.stream_create(domain=1, ncores=5)
        hs.stream_create(domain=2, ncores=5)
        assert len(hs.streams_in(1)) == 1


class TestBuffers:
    def test_create_requires_exactly_one_source(self, hs):
        with pytest.raises(HStreamsBadArgument):
            hs.buffer_create()
        with pytest.raises(HStreamsBadArgument):
            hs.buffer_create(nbytes=8, array=np.zeros(1))

    def test_wrap_is_zero_copy_on_host(self, hs):
        arr = np.arange(4.0)
        buf = hs.wrap(arr)
        buf.view(0)[0] = 9.0
        assert arr[0] == 9.0

    def test_eager_domain_instantiation(self, hs):
        buf = hs.buffer_create(nbytes=64, domains=[1, 2])
        assert buf.instantiated_in(1) and buf.instantiated_in(2)

    def test_capacity_enforced(self):
        # Shrink the card's RAM so a modest buffer exceeds it.
        from dataclasses import replace

        from repro.sim.platforms import HSW, KNC_7120A, Platform

        tiny = Platform(
            name="tiny",
            host=HSW,
            cards=(replace(KNC_7120A, ram_gb=1e-6),),  # ~1 KB card
        )
        hs = HStreams(platform=tiny, backend="thread", trace=False)
        big = hs.buffer_create(nbytes=1 << 20)
        s = hs.stream_create(domain=1, ncores=4)
        with pytest.raises(HStreamsOutOfMemory):
            hs.enqueue_xfer(s, big)
        hs.fini()

    def test_destroy_releases_accounting(self, hs):
        buf = hs.buffer_create(nbytes=1 << 20, domains=[1])
        before = hs.domain(1).allocated_bytes
        hs.buffer_destroy(buf)
        assert hs.domain(1).allocated_bytes == before - (1 << 20)
        assert buf not in hs.buffers


class TestExecution:
    def test_offload_roundtrip(self, hs):
        hs.register_kernel("dbl", fn=lambda x: np.multiply(x, 2.0, out=x))
        s = hs.stream_create(domain=1, ncores=10)
        data = np.arange(16.0)
        buf = hs.wrap(data)
        hs.enqueue_xfer(s, buf)
        hs.enqueue_compute(s, "dbl", args=(buf.tensor((16,)),))
        hs.enqueue_xfer(s, buf, XferDirection.SINK_TO_SRC)
        hs.thread_synchronize()
        np.testing.assert_array_equal(data, np.arange(16.0) * 2)

    def test_compute_without_transfer_does_not_touch_host(self, hs):
        """Data isolation: per-domain address spaces are really separate."""
        hs.register_kernel("fill", fn=lambda x: x.fill(7.0))
        s = hs.stream_create(domain=1, ncores=10)
        data = np.zeros(8)
        buf = hs.wrap(data)
        hs.enqueue_xfer(s, buf)
        hs.enqueue_compute(s, "fill", args=(buf.tensor((8,)),))
        hs.thread_synchronize()
        assert (data == 0).all()  # result never copied back

    def test_host_as_target_stream_aliases(self, hs):
        """Host streams compute directly on the wrapped memory."""
        hs.register_kernel("fill", fn=lambda x: x.fill(3.0))
        s = hs.stream_create(domain=0, ncores=4)
        data = np.zeros(8)
        buf = hs.wrap(data)
        hs.enqueue_xfer(s, buf)  # optimized away
        hs.enqueue_compute(s, "fill", args=(buf.tensor((8,)),))
        hs.thread_synchronize()
        assert (data == 3.0).all()

    def test_fifo_semantics_with_conflicting_actions(self, hs):
        """Conflicting actions must execute in enqueue order."""
        log = []
        hs.register_kernel("append", fn=lambda x, tag: log.append(tag))
        s = hs.stream_create(domain=1, ncores=10)
        buf = hs.buffer_create(nbytes=8)
        for i in range(10):
            hs.enqueue_compute(s, "append", args=(buf.all_inout(), i))
        hs.thread_synchronize()
        assert log == list(range(10))

    def test_out_of_order_when_independent(self, hs):
        """A later independent transfer completes before a slow compute."""
        hs.register_kernel("slow", fn=lambda x: time.sleep(0.15))
        s = hs.stream_create(domain=1, ncores=10)
        work = hs.buffer_create(nbytes=8)
        other = hs.buffer_create(nbytes=8)
        ev_compute = hs.enqueue_compute(s, "slow", args=(work.all_inout(),))
        ev_xfer = hs.enqueue_xfer(s, other)  # independent operand
        hs.event_wait([ev_xfer])
        assert not ev_compute.is_complete()  # transfer overtook the compute
        hs.thread_synchronize()

    def test_strict_fifo_stream_forbids_overtaking(self, hs):
        hs.register_kernel("slow", fn=lambda x: time.sleep(0.1))
        s = hs.stream_create(domain=1, ncores=10, strict_fifo=True)
        work = hs.buffer_create(nbytes=8)
        other = hs.buffer_create(nbytes=8)
        ev_compute = hs.enqueue_compute(s, "slow", args=(work.all_inout(),))
        ev_xfer = hs.enqueue_xfer(s, other)
        hs.event_wait([ev_xfer])
        assert ev_compute.is_complete()  # strict order: compute ran first
        hs.thread_synchronize()

    def test_cross_stream_dependence_via_event_stream_wait(self, hs):
        order = []
        hs.register_kernel("tag", fn=lambda x, t: order.append(t))
        hs.register_kernel("slowtag", fn=lambda x, t: (time.sleep(0.1), order.append(t)))
        s1 = hs.stream_create(domain=1, ncores=10)
        s2 = hs.stream_create(domain=2, ncores=10)
        b1 = hs.buffer_create(nbytes=8)
        b2 = hs.buffer_create(nbytes=8)
        ev = hs.enqueue_compute(s1, "slowtag", args=(b1.all_inout(), "producer"))
        hs.event_stream_wait(s2, [ev])
        hs.enqueue_compute(s2, "tag", args=(b2.all_inout(), "consumer"))
        hs.thread_synchronize()
        assert order == ["producer", "consumer"]

    def test_partial_range_operands_allow_tile_concurrency(self, hs):
        hs.register_kernel("fill", fn=lambda x, v: x.fill(v))
        s = hs.stream_create(domain=1, ncores=10)
        data = np.zeros(16)
        buf = hs.wrap(data)
        lo = buf.tensor((8,), offset=0)
        hi = buf.tensor((8,), offset=64)
        hs.enqueue_compute(s, "fill", args=(lo, 1.0))
        hs.enqueue_compute(s, "fill", args=(hi, 2.0))
        hs.enqueue_xfer(s, buf, XferDirection.SINK_TO_SRC)
        hs.thread_synchronize()
        np.testing.assert_array_equal(data[:8], np.ones(8))
        np.testing.assert_array_equal(data[8:], 2 * np.ones(8))

    def test_scalar_args_pass_through(self, hs):
        got = []
        hs.register_kernel("k", fn=lambda x, a, b: got.append((a, b)))
        s = hs.stream_create(domain=1, ncores=4)
        buf = hs.buffer_create(nbytes=8)
        hs.enqueue_compute(s, "k", args=(buf.all_inout(), 5, "tag"))
        hs.thread_synchronize()
        assert got == [(5, "tag")]

    def test_unregistered_kernel_raises_at_enqueue(self, hs):
        s = hs.stream_create(domain=1, ncores=4)
        with pytest.raises(HStreamsNotFound):
            hs.enqueue_compute(s, "nope")


class TestSynchronization:
    def test_event_wait_all(self, hs):
        hs.register_kernel("nap", fn=lambda x: time.sleep(0.02))
        s = hs.stream_create(domain=1, ncores=4)
        bufs = [hs.buffer_create(nbytes=8) for _ in range(3)]
        evs = [hs.enqueue_compute(s, "nap", args=(b.all_inout(),)) for b in bufs]
        hs.event_wait(evs, wait_all=True)
        assert all(e.is_complete() for e in evs)

    def test_event_wait_any(self, hs):
        hs.register_kernel("napx", fn=lambda x, d: time.sleep(d))
        s1 = hs.stream_create(domain=1, ncores=4)
        s2 = hs.stream_create(domain=2, ncores=4)
        b1 = hs.buffer_create(nbytes=8)
        b2 = hs.buffer_create(nbytes=8)
        fast = hs.enqueue_compute(s1, "napx", args=(b1.all_inout(), 0.01))
        slow = hs.enqueue_compute(s2, "napx", args=(b2.all_inout(), 0.5))
        hs.event_wait([fast, slow], wait_all=False)
        assert fast.is_complete() or slow.is_complete()
        hs.thread_synchronize()

    def test_event_wait_timeout(self, hs):
        hs.register_kernel("nap", fn=lambda x: time.sleep(0.3))
        s = hs.stream_create(domain=1, ncores=4)
        b = hs.buffer_create(nbytes=8)
        ev = hs.enqueue_compute(s, "nap", args=(b.all_inout(),))
        with pytest.raises(HStreamsTimedOut):
            hs.event_wait([ev], timeout=0.01)
        hs.thread_synchronize()

    def test_stream_synchronize_scopes_to_one_stream(self, hs):
        hs.register_kernel("napx", fn=lambda x, d: time.sleep(d))
        s1 = hs.stream_create(domain=1, ncores=4)
        s2 = hs.stream_create(domain=2, ncores=4)
        b1 = hs.buffer_create(nbytes=8)
        b2 = hs.buffer_create(nbytes=8)
        quick = hs.enqueue_compute(s1, "napx", args=(b1.all_inout(), 0.01))
        slow = hs.enqueue_compute(s2, "napx", args=(b2.all_inout(), 0.4))
        hs.stream_synchronize(s1)
        assert quick.is_complete()
        assert not slow.is_complete()
        hs.thread_synchronize()

    def test_kernel_error_surfaces_at_sync(self, hs):
        def boom(x):
            raise ValueError("kernel exploded")

        hs.register_kernel("boom", fn=boom)
        s = hs.stream_create(domain=1, ncores=4)
        b = hs.buffer_create(nbytes=8)
        hs.enqueue_compute(s, "boom", args=(b.all_inout(),))
        with pytest.raises(ValueError, match="kernel exploded"):
            hs.thread_synchronize()

    def test_elapsed_is_wall_clock(self, hs):
        t0 = hs.elapsed()
        time.sleep(0.02)
        assert hs.elapsed() - t0 >= 0.015
