"""Property tests: the conflict-indexed scan *is* the naive scan.

PR 5 replaced ``RelaxedPolicy``'s O(window) newest-first walk with a
per-buffer conflict index. The contract is byte-for-byte semantic
equivalence: for any sequence of actions, operand footprints, barriers,
and interleaved completions, the indexed scan must return exactly the
dependence set the pre-index ``NaiveRelaxedPolicy`` oracle returns.

Three layers of evidence:

* window-level Hypothesis fuzz over random action/operand/barrier/
  completion sequences, comparing both policies on shared actions;
* backend-level property test — the same random program enqueued twice
  (indexed vs naive policy) on the thread *and* sim backends must
  produce identical scheduler-observed dependence sets (completions are
  held off during enqueue: blocked kernels on the thread backend, the
  idle engine on sim);
* unit tests that the condition-variable wait paths that replaced the
  old polling loops still surface pending failures and timeouts.
"""

import threading
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.actions import Action, ActionKind, Operand, OperandMode
from repro.core.buffer import Buffer, ProxyAddressSpace
from repro.core.dependences import (
    NaiveRelaxedPolicy,
    RelaxedPolicy,
    StreamWindow,
)
from repro.core.errors import HStreamsTimedOut
from repro.core.runtime import HStreams
from repro.core.scheduler import SchedulerObserver
from repro.sim.kernels import KernelCost

N_BUFFERS = 4
BUF_BYTES = 64


class _Flag:
    """Toggleable completion stand-in shared by both windows."""

    __slots__ = ("done",)

    def __init__(self):
        self.done = False

    def is_complete(self):
        return self.done


@st.composite
def window_programs(draw):
    """Steps: ("action", operands, barrier) | ("complete", index)."""
    n_steps = draw(st.integers(1, 40))
    steps = []
    n_actions = 0
    for _ in range(n_steps):
        if n_actions and draw(st.integers(0, 3)) == 0:
            steps.append(("complete", draw(st.integers(0, n_actions - 1))))
            continue
        barrier = draw(st.integers(0, 7)) == 0
        operands = []
        if not barrier:
            for _ in range(draw(st.integers(0, 3))):
                buf = draw(st.integers(0, N_BUFFERS - 1))
                offset = draw(st.integers(0, BUF_BYTES - 1))
                length = draw(st.integers(0, BUF_BYTES - offset))
                mode = draw(st.sampled_from(list(OperandMode)))
                operands.append((buf, offset, length, mode))
        steps.append(("action", operands, barrier))
        n_actions += 1
    return steps


class TestIndexedScanEqualsNaiveScan:
    """Window-level fuzz: both policies, same actions, equal dep sets."""

    @settings(max_examples=60, deadline=None)
    @given(steps=window_programs())
    def test_dependence_sets_identical(self, steps):
        space = ProxyAddressSpace()
        buffers = [Buffer(space, nbytes=BUF_BYTES) for _ in range(N_BUFFERS)]
        indexed = StreamWindow(policy=RelaxedPolicy())
        naive = StreamWindow(policy=NaiveRelaxedPolicy())
        actions = []
        for step in steps:
            if step[0] == "complete":
                actions[step[1]].completion.done = True
                continue
            _, operand_specs, barrier = step
            action = Action(
                kind=ActionKind.SYNC if barrier else ActionKind.COMPUTE,
                stream=None,
                operands=tuple(
                    Operand(buffers[b], off, ln, mode)
                    for b, off, ln, mode in operand_specs
                ),
                barrier=barrier,
            )
            action.completion = _Flag()
            deps_indexed = [a.seq for a in indexed.deps_for(action)]
            deps_naive = [a.seq for a in naive.deps_for(action)]
            assert deps_indexed == deps_naive
            indexed.add(action)
            naive.add(action)
            actions.append(action)
        # Drain: with everything complete, both converge to empty.
        for action in actions:
            action.completion.done = True
        probe = Action(kind=ActionKind.SYNC, stream=None, barrier=True)
        assert indexed.deps_for(probe) == naive.deps_for(probe) == []
        assert indexed.in_flight == naive.in_flight == 0


class _DepRecorder(SchedulerObserver):
    """Record each admission's dependence set, in enqueue order."""

    def __init__(self):
        self.entries = []

    def on_enqueue(self, action, deps, dangling):
        self.entries.append((action.seq, tuple(d.seq for d in deps)))

    def normalized(self):
        """Dep sets as program indices (seqs differ across runs)."""
        index_of = {seq: i for i, (seq, _) in enumerate(self.entries)}
        return [
            tuple(sorted(index_of[s] for s in deps))
            for _, deps in self.entries
        ]


@st.composite
def backend_programs(draw):
    """("compute", buf, off, len, mode) | ("barrier",) steps."""
    n_steps = draw(st.integers(1, 12))
    steps = []
    for _ in range(n_steps):
        if draw(st.integers(0, 5)) == 0:
            steps.append(("barrier",))
            continue
        buf = draw(st.integers(0, 2))
        offset = draw(st.integers(0, BUF_BYTES - 1))
        length = draw(st.integers(0, BUF_BYTES - offset))
        mode = draw(st.sampled_from(list(OperandMode)))
        steps.append(("compute", buf, offset, length, mode))
    return steps


def _run_program(backend, steps, naive):
    """Enqueue ``steps`` with completions held off; return normalized
    dependence sets as observed by the scheduler."""
    gate = threading.Event()
    hs = HStreams(backend=backend, trace=False)
    hs.register_kernel(
        "blk",
        fn=lambda *_args: gate.wait(),
        cost_fn=lambda *_args: KernelCost("blk", flops=1.0, size=1.0),
    )
    try:
        stream = hs.stream_create(domain=0 if backend == "thread" else 1, ncores=1)
        if naive:
            stream.window.policy = NaiveRelaxedPolicy()
        recorder = _DepRecorder()
        with hs.scheduler._lock:
            hs.scheduler.observers.append(recorder)
        buffers = [hs.buffer_create(nbytes=BUF_BYTES) for _ in range(3)]
        sentinel = hs.buffer_create(nbytes=8)
        # Prologue: a blocked compute keeps the window non-empty, so a
        # barrier enqueued early depends on it and cannot complete (and
        # thus retire) while the program is still being enqueued — dep
        # sets stay deterministic and comparable across runs.
        hs.enqueue_compute(stream, "blk", operands=(sentinel.all_out(),))
        for step in steps:
            if step[0] == "barrier":
                hs.event_stream_wait(stream, [])
            else:
                _, buf, offset, length, mode = step
                hs.enqueue_compute(
                    stream, "blk", operands=(buffers[buf].range(offset, length, mode),)
                )
        normalized = recorder.normalized()
        gate.set()
        hs.thread_synchronize(timeout=30.0)
        return normalized
    finally:
        gate.set()
        hs.fini()


class TestBackendLevelEquivalence:
    """Same program, indexed vs naive policy, identical observed deps."""

    @settings(max_examples=10, deadline=None)
    @given(steps=backend_programs())
    def test_thread_backend(self, steps):
        assert _run_program("thread", steps, naive=False) == _run_program(
            "thread", steps, naive=True
        )

    @settings(max_examples=10, deadline=None)
    @given(steps=backend_programs())
    def test_sim_backend(self, steps):
        assert _run_program("sim", steps, naive=False) == _run_program(
            "sim", steps, naive=True
        )


class TestConditionVariableWaits:
    """The CV-based wait paths keep the old poll loops' semantics."""

    def _blocked_runtime(self):
        gate = threading.Event()
        hs = HStreams(backend="thread", trace=False)
        hs.register_kernel("blk", fn=lambda *_args: gate.wait())
        hs.register_kernel(
            "boom", fn=lambda *_args: (_ for _ in ()).throw(RuntimeError("boom"))
        )
        return hs, gate

    def test_wait_raises_failure_from_another_stream(self):
        # The awaited event belongs to a blocked action in stream 1; a
        # kernel in stream 2 fails. The CV wait must wake on the failure
        # and raise it promptly — not sit out its full timeout (the old
        # poll loop's behaviour, with the poll latency removed).
        hs, gate = self._blocked_runtime()
        try:
            s1 = hs.stream_create(domain=0, ncores=1)
            s2 = hs.stream_create(domain=0, ncores=1)
            buf = hs.buffer_create(nbytes=8)
            blocked = hs.enqueue_compute(s1, "blk", operands=(buf.all_out(),))
            hs.enqueue_compute(s2, "boom")
            t0 = time.monotonic()
            with pytest.raises(RuntimeError, match="boom"):
                hs.event_wait([blocked], timeout=30.0)
            assert time.monotonic() - t0 < 10.0
            gate.set()
            hs.clear_failure()
            hs.thread_synchronize(timeout=30.0)
        finally:
            gate.set()
            hs.fini()

    def test_wait_any_raises_failure_too(self):
        hs, gate = self._blocked_runtime()
        try:
            s1 = hs.stream_create(domain=0, ncores=1)
            s2 = hs.stream_create(domain=0, ncores=1)
            buf = hs.buffer_create(nbytes=8)
            blocked = hs.enqueue_compute(s1, "blk", operands=(buf.all_out(),))
            hs.enqueue_compute(s2, "boom")
            with pytest.raises(RuntimeError, match="boom"):
                hs.event_wait([blocked], wait_all=False, timeout=30.0)
            gate.set()
            hs.clear_failure()
            hs.thread_synchronize(timeout=30.0)
        finally:
            gate.set()
            hs.fini()

    def test_wait_timeout_still_raises(self):
        hs, gate = self._blocked_runtime()
        try:
            stream = hs.stream_create(domain=0, ncores=1)
            buf = hs.buffer_create(nbytes=8)
            blocked = hs.enqueue_compute(stream, "blk", operands=(buf.all_out(),))
            with pytest.raises(HStreamsTimedOut):
                hs.event_wait([blocked], timeout=0.2)
            gate.set()
            hs.thread_synchronize(timeout=30.0)
        finally:
            gate.set()
            hs.fini()
