"""Tests for the SCIF/COI plumbing layers."""

import pytest
from hypothesis import given, strategies as st

from repro.coi.buffer_pool import BufferPool
from repro.coi.coi import COIContext
from repro.coi.scif import ScifFabric
from repro.sim.engine import Engine
from repro.sim.platforms import make_platform


def make_fabric(ncards=2):
    eng = Engine()
    platform = make_platform("HSW", ncards=ncards)
    return eng, ScifFabric(eng, platform.make_links(eng), host_mem_bw_gbs=100.0)


class TestScif:
    def test_message_latency(self):
        eng, fabric = make_fabric()
        done = []
        fabric.message(0, 1).add_callback(lambda e: done.append(eng.now))
        eng.run()
        assert done[0] > 0

    def test_local_message_is_free(self):
        eng, fabric = make_fabric()
        done = []
        fabric.message(0, 0).add_callback(lambda e: done.append(eng.now))
        eng.run()
        assert done == [pytest.approx(0.0)]

    def test_dma_occupies_one_direction(self):
        eng, fabric = make_fabric()
        finish = []
        fabric.dma(0, 1, int(6.8e9)).add_callback(lambda e: finish.append(eng.now))
        fabric.dma(0, 1, int(6.8e9)).add_callback(lambda e: finish.append(eng.now))
        eng.run()
        assert finish[1] == pytest.approx(2 * finish[0], rel=1e-4)

    def test_dma_duplex_directions_overlap(self):
        eng, fabric = make_fabric()
        finish = {}
        fabric.dma(0, 1, int(6.8e9)).add_callback(lambda e: finish.setdefault("h2d", eng.now))
        fabric.dma(1, 0, int(6.8e9)).add_callback(lambda e: finish.setdefault("d2h", eng.now))
        eng.run()
        assert finish["h2d"] == pytest.approx(finish["d2h"])

    def test_dma_between_different_cards_is_rejected(self):
        _, fabric = make_fabric()
        with pytest.raises(ValueError):
            fabric.dma(1, 2, 100)

    def test_unknown_node_rejected(self):
        _, fabric = make_fabric()
        with pytest.raises(ValueError):
            fabric.dma(0, 9, 100)

    def test_local_dma_is_free(self):
        eng, fabric = make_fabric()
        done = []
        fabric.dma(1, 1, 1 << 30).add_callback(lambda e: done.append(eng.now))
        eng.run()
        assert done == [pytest.approx(0.0)]

    def test_host_copy_at_memory_bandwidth(self):
        eng, fabric = make_fabric()
        done = []
        fabric.host_copy(int(100e9)).add_callback(lambda e: done.append(eng.now))
        eng.run()
        assert done == [pytest.approx(1.0)]

    def test_counters(self):
        eng, fabric = make_fabric()
        fabric.message(0, 1)
        fabric.dma(0, 1, 10)
        eng.run()
        assert fabric.message_count == 1 and fabric.dma_count == 1


class TestBufferPool:
    def cost(self, nbytes):
        return 1e-4 + nbytes * 1e-12

    def test_first_acquire_pays(self):
        pool = BufferPool(2 << 20, self.cost)
        assert pool.acquire(1, 1 << 20) > 0

    def test_release_then_acquire_is_free(self):
        pool = BufferPool(2 << 20, self.cost)
        pool.acquire(1, 3 << 20)  # 2 chunks
        pool.release(1, 3 << 20)
        assert pool.acquire(1, 4 << 20) == pytest.approx(0.0)

    def test_partial_reuse_pays_for_the_shortfall(self):
        pool = BufferPool(2 << 20, self.cost)
        pool.acquire(1, 2 << 20)  # 1 chunk
        pool.release(1, 2 << 20)
        cost = pool.acquire(1, 6 << 20)  # needs 3, has 1
        assert cost == pytest.approx(self.cost(2 * (2 << 20)))

    def test_pools_are_per_domain(self):
        pool = BufferPool(2 << 20, self.cost)
        pool.acquire(1, 2 << 20)
        pool.release(1, 2 << 20)
        assert pool.acquire(2, 2 << 20) > 0  # domain 2 has no recycled chunks

    def test_disabled_pool_always_pays(self):
        pool = BufferPool(2 << 20, self.cost, enabled=False)
        pool.acquire(1, 2 << 20)
        pool.release(1, 2 << 20)
        assert pool.acquire(1, 2 << 20) > 0

    def test_chunks_for_rounds_up(self):
        pool = BufferPool(2 << 20, self.cost)
        assert pool.chunks_for(1) == 1
        assert pool.chunks_for(2 << 20) == 1
        assert pool.chunks_for((2 << 20) + 1) == 2

    def test_stats(self):
        pool = BufferPool(2 << 20, self.cost)
        pool.acquire(1, 2 << 20)
        pool.release(1, 2 << 20)
        pool.acquire(1, 2 << 20)
        assert pool.fresh_allocations == 1
        assert pool.recycled_allocations == 1

    @given(sizes=st.lists(st.integers(1, 32 << 20), min_size=1, max_size=20))
    def test_property_acquire_release_cycle_conserves_chunks(self, sizes):
        pool = BufferPool(2 << 20, self.cost)
        total = 0
        for s in sizes:
            pool.acquire(1, s)
            total += pool.chunks_for(s)
        for s in sizes:
            pool.release(1, s)
        assert pool.free_chunks(1) == total


class TestCOI:
    def make_ctx(self):
        eng, fabric = make_fabric()
        pool = BufferPool(2 << 20, lambda n: 1e-4)
        return eng, COIContext(eng, fabric, pool, domains=3)

    def test_spawn_costs_only_for_cards(self):
        _, ctx = self.make_ctx()
        assert ctx.processes[0].spawn_cost_s == 0.0
        assert ctx.processes[1].spawn_cost_s > 0
        assert ctx.init_cost_s == pytest.approx(2 * ctx.processes[1].spawn_cost_s)

    def test_pipeline_runs_in_order(self):
        eng, ctx = self.make_ctx()
        pipe = ctx.pipeline(1)
        finish = []
        pipe.run_function(0.5).add_callback(lambda e: finish.append(("a", eng.now)))
        pipe.run_function(0.5).add_callback(lambda e: finish.append(("b", eng.now)))
        eng.run()
        assert finish[0][0] == "a"
        assert finish[1][1] > finish[0][1]

    def test_two_pipelines_run_concurrently(self):
        eng, ctx = self.make_ctx()
        p1, p2 = ctx.pipeline(1), ctx.pipeline(1)
        finish = []
        p1.run_function(1.0).add_callback(lambda e: finish.append(eng.now))
        p2.run_function(1.0).add_callback(lambda e: finish.append(eng.now))
        eng.run()
        assert max(finish) < 1.5  # not serialized to ~2s

    def test_pipeline_unknown_domain(self):
        _, ctx = self.make_ctx()
        with pytest.raises(ValueError):
            ctx.pipeline(9)

    def test_buffer_create_cost_card_vs_host(self):
        _, ctx = self.make_ctx()
        _, cost_card = ctx.buffer_create(1, 1 << 20)
        _, cost_host = ctx.buffer_create(0, 1 << 20)
        assert cost_card > 0 and cost_host == 0.0

    def test_buffer_destroy_recycles(self):
        _, ctx = self.make_ctx()
        buf, _ = ctx.buffer_create(1, 2 << 20)
        ctx.buffer_destroy(buf)
        _, cost = ctx.buffer_create(1, 2 << 20)
        assert cost == pytest.approx(0.0)

    def test_double_destroy_rejected(self):
        _, ctx = self.make_ctx()
        buf, _ = ctx.buffer_create(1, 8)
        ctx.buffer_destroy(buf)
        with pytest.raises(ValueError):
            ctx.buffer_destroy(buf)

    def test_on_start_runs_when_slot_granted(self):
        eng, ctx = self.make_ctx()
        pipe = ctx.pipeline(1)
        starts = []
        pipe.run_function(1.0, on_start=lambda: starts.append(eng.now))
        pipe.run_function(1.0, on_start=lambda: starts.append(eng.now))
        eng.run()
        assert starts[1] >= starts[0] + 1.0
