"""Smoke tests: the shipped examples must run clean end to end.

Each example is executed as a subprocess (the way a user runs it); a
non-zero exit or traceback fails the test. The heavier sweeps inside the
examples are exercised by the benchmarks, so only the faster examples
run here.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, f"{name} failed:\n{proc.stdout}\n{proc.stderr}"
    assert "Traceback" not in proc.stderr
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "thread backend" in out and "sim backend" in out
        assert "#" in out  # the Gantt chart rendered

    def test_ompss_dataflow(self):
        out = run_example("ompss_dataflow.py")
        assert "(2 + 3) * 10 = 50" in out
        assert "hStreams layer advantage" in out

    def test_fabric_cluster(self):
        out = run_example("fabric_cluster.py")
        assert "remote HSW node over fabric" in out

    def test_trace_export(self, tmp_path):
        import subprocess, sys
        target = tmp_path / "trace.json"
        proc = subprocess.run(
            [sys.executable, str(EXAMPLES / "trace_export.py"), str(target)],
            capture_output=True, text=True, timeout=240,
        )
        assert proc.returncode == 0, proc.stderr
        import json
        events = json.loads(target.read_text())
        assert any(e.get("cat") == "transfer" for e in events)

    def test_abaqus_solver(self):
        out = run_example("abaqus_solver.py")
        assert "Fig. 9" in out and "Fig. 8" in out

    @pytest.mark.slow
    def test_matmul_hetero(self):
        out = run_example("matmul_hetero.py")
        assert "GFl/s" in out

    @pytest.mark.slow
    def test_cholesky_hetero(self):
        out = run_example("cholesky_hetero.py")
        assert "MAGMA" in out

    @pytest.mark.slow
    def test_rtm_pipeline(self):
        out = run_example("rtm_pipeline.py")
        assert "max field error = 0.00e+00" in out
