"""Tests for the CUDA-Streams comparator model."""

import numpy as np
import pytest

from repro import make_platform
from repro.models.cuda_streams import (
    MEMCPY_DEVICE_TO_HOST,
    MEMCPY_HOST_TO_DEVICE,
    CudaError,
    CudaRuntime,
)
from repro.sim.kernels import KernelCost, dgemm


def big_cost(seconds: float) -> KernelCost:
    return KernelCost("default", flops=seconds * 0.5 * 1680e9, size=1e9)


@pytest.fixture()
def cuda():
    rt = CudaRuntime(platform=make_platform("HSW", 2, card="K40X"), backend="sim")
    yield rt


class TestDeviceManagement:
    def test_device_count(self, cuda):
        assert cuda.device_count == 2

    def test_set_get_device(self, cuda):
        cuda.set_device(1)
        assert cuda.get_device() == 1

    def test_invalid_device(self, cuda):
        with pytest.raises(CudaError):
            cuda.set_device(5)

    def test_needs_a_card(self):
        with pytest.raises(CudaError):
            CudaRuntime(platform=make_platform("HSW", 0), backend="sim")


class TestHandleDiscipline:
    """CUDA's explicit create/destroy burden (paper §IV)."""

    def test_stream_double_destroy(self, cuda):
        s = cuda.stream_create()
        cuda.stream_destroy(s)
        with pytest.raises(CudaError):
            cuda.stream_destroy(s)

    def test_use_after_destroy(self, cuda):
        s = cuda.stream_create()
        cuda.stream_destroy(s)
        with pytest.raises(CudaError):
            cuda.stream_synchronize(s)

    def test_event_must_be_recorded_before_wait(self, cuda):
        s = cuda.stream_create()
        ev = cuda.event_create()
        with pytest.raises(CudaError):
            cuda.stream_wait_event(s, ev)

    def test_event_double_destroy(self, cuda):
        ev = cuda.event_create()
        cuda.event_destroy(ev)
        with pytest.raises(CudaError):
            cuda.event_destroy(ev)

    def test_double_free(self, cuda):
        ptr = cuda.malloc(1024)
        cuda.free(ptr)
        with pytest.raises(CudaError):
            cuda.free(ptr)


class TestPerDeviceAddresses:
    def test_pointer_bound_to_one_device(self, cuda):
        cuda.set_device(0)
        ptr0 = cuda.malloc(1024)
        cuda.set_device(1)
        s1 = cuda.stream_create()
        host = np.zeros(128)
        with pytest.raises(CudaError, match="per-device"):
            cuda.memcpy_async(ptr0, host, 1024, MEMCPY_HOST_TO_DEVICE, s1)

    def test_oversized_copy_rejected(self, cuda):
        ptr = cuda.malloc(64)
        s = cuda.stream_create()
        with pytest.raises(CudaError):
            cuda.memcpy_async(ptr, np.zeros(64), 512, MEMCPY_HOST_TO_DEVICE, s)

    def test_bad_kind_rejected(self, cuda):
        ptr = cuda.malloc(64)
        s = cuda.stream_create()
        with pytest.raises(CudaError):
            cuda.memcpy_async(ptr, np.zeros(8), 64, "sideways", s)


class TestStrictFifo:
    def test_memcpy_cannot_overtake_kernel(self, cuda):
        """The defining difference from hStreams (paper §IV)."""
        cuda.register_kernel("busy", cost_fn=lambda *a: big_cost(1.0))
        s = cuda.stream_create()
        work = cuda.malloc(1024)
        other = cuda.malloc(1024)
        cuda.launch(s, "busy", args=(work,))
        # Transfer of an unrelated allocation still queues behind.
        cuda.memcpy_async(other, np.zeros(128), 1024, MEMCPY_HOST_TO_DEVICE, s)
        cuda.device_synchronize()
        tr = cuda.tracer
        kernel_end = max(e.end for e in tr.filter(kind="compute"))
        xfer_start = min(e.start for e in tr.filter(kind="transfer"))
        assert xfer_start >= kernel_end - 1e-9

    def test_two_streams_with_events_pipeline(self, cuda):
        """The CUDA workaround: split into streams + event sync."""
        cuda.register_kernel("busy", cost_fn=lambda *a: big_cost(0.2))
        s_compute = cuda.stream_create()
        s_copy = cuda.stream_create()
        bufs = [cuda.malloc(16 << 20) for _ in range(3)]
        host = np.zeros(1 << 20)
        for b in bufs:
            ev = cuda.event_create()
            cuda.memcpy_async(b, host, 16 << 20, MEMCPY_HOST_TO_DEVICE, s_copy)
            cuda.event_record(ev, s_copy)
            cuda.stream_wait_event(s_compute, ev)
            cuda.launch(s_compute, "busy", args=(b,))
        cuda.device_synchronize()
        assert cuda.tracer.overlap("compute", "transfer") > 0

    def test_kernels_from_two_streams_contend_for_the_device(self, cuda):
        """No sub-device partitioning: full-width kernels serialize."""
        cuda.register_kernel("busy", cost_fn=lambda *a: big_cost(1.0))
        s1 = cuda.stream_create()
        s2 = cuda.stream_create()
        b1, b2 = cuda.malloc(1024), cuda.malloc(1024)
        t0 = cuda.elapsed()
        cuda.launch(s1, "busy", args=(b1,))
        cuda.launch(s2, "busy", args=(b2,))
        cuda.device_synchronize()
        span = cuda.elapsed() - t0
        assert span > 1.6  # ~2 serialized seconds, not ~1 concurrent


class TestFunctional:
    def test_roundtrip_on_thread_backend(self):
        cuda = CudaRuntime(
            platform=make_platform("HSW", 1, card="K40X"), backend="thread", trace=False
        )
        cuda.register_kernel("dbl", fn=lambda x: np.multiply(x, 2.0, out=x))
        s = cuda.stream_create()
        host_in = np.arange(16.0)
        host_out = np.zeros(16)
        ptr = cuda.malloc(host_in.nbytes)
        cuda.memcpy_async(ptr, host_in, host_in.nbytes, MEMCPY_HOST_TO_DEVICE, s)
        cuda.launch(s, "dbl", args=(ptr,))
        cuda.memcpy_async(host_out, ptr, host_out.nbytes, MEMCPY_DEVICE_TO_HOST, s)
        cuda.device_synchronize()
        np.testing.assert_array_equal(
            host_out.view(np.float64), np.arange(16.0) * 2
        )
        cuda.fini()

    def test_event_synchronize(self, cuda):
        cuda.register_kernel("busy", cost_fn=lambda *a: big_cost(0.3))
        s = cuda.stream_create()
        b = cuda.malloc(64)
        cuda.launch(s, "busy", args=(b,))
        ev = cuda.event_create()
        cuda.event_record(ev, s)
        cuda.event_synchronize(ev)
        assert cuda.elapsed() >= 0.3
