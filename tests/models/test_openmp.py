"""Tests for the OpenMP 4.0/4.5 comparator model."""

import numpy as np
import pytest

from repro import make_platform
from repro.models.openmp import OpenMPRuntime
from repro.sim.kernels import KernelCost, dgemm


def big_cost(seconds: float) -> KernelCost:
    return KernelCost("default", flops=seconds * 0.45 * 1298.1e9, size=1e9)


@pytest.fixture()
def omp45():
    return OpenMPRuntime(platform=make_platform("HSW", 2), backend="sim", spec="4.5")


@pytest.fixture()
def omp40():
    return OpenMPRuntime(platform=make_platform("HSW", 2), backend="sim", spec="4.0")


class TestSpecGates:
    def test_bad_spec_rejected(self):
        with pytest.raises(ValueError):
            OpenMPRuntime(spec="3.1")

    def test_nowait_requires_45(self, omp40):
        omp40.register_kernel("k", cost_fn=lambda *a: big_cost(0.1))
        with pytest.raises(ValueError, match="4.5"):
            omp40.target(0, "k", nowait=True)

    def test_nowait_update_requires_45(self, omp40):
        with pytest.raises(ValueError, match="4.5"):
            omp40.target_update_to(0, np.zeros(8), nowait=True)


class TestDevices:
    def test_num_devices(self, omp45):
        assert omp45.num_devices == 2

    def test_unknown_device(self, omp45):
        omp45.register_kernel("k", cost_fn=lambda *a: big_cost(0.1))
        with pytest.raises(ValueError):
            omp45.target(7, "k")


class TestSynchrony:
    def test_40_target_blocks_host(self, omp40):
        omp40.register_kernel("k", cost_fn=lambda *a: big_cost(0.5))
        t0 = omp40.elapsed()
        omp40.target(0, "k")
        assert omp40.elapsed() - t0 >= 0.5  # returned only after completion

    def test_45_nowait_returns_immediately(self, omp45):
        omp45.register_kernel("k", cost_fn=lambda *a: big_cost(0.5))
        t0 = omp45.elapsed()
        ev = omp45.target(0, "k", nowait=True)
        assert omp45.elapsed() - t0 < 0.01
        omp45.taskwait()
        assert omp45.elapsed() - t0 >= 0.5
        assert ev.is_complete()

    def test_40_no_overlap_of_transfer_and_compute(self, omp40):
        """4.0 has no async transfers, so pipelining is impossible."""
        omp40.register_kernel("k", cost_fn=lambda *a: big_cost(0.2))
        arrays = [np.zeros(1 << 20) for _ in range(3)]
        for a in arrays:
            omp40.target_enter_data(0, [a])  # blocks
            omp40.target(0, "k", args=(a,))  # blocks
        assert omp40.hstreams.tracer.overlap("compute", "transfer") == pytest.approx(0.0)

    def test_45_nowait_overlaps_on_two_devices(self, omp45):
        omp45.register_kernel("k", cost_fn=lambda *a: big_cost(0.5))
        t0 = omp45.elapsed()
        omp45.target(0, "k", nowait=True)
        omp45.target(1, "k", nowait=True)
        omp45.taskwait()
        assert omp45.elapsed() - t0 < 0.8  # concurrent, not 1.0 serialized

    def test_no_subdevice_concurrency_within_one_device(self, omp45):
        """One logical device = one queue: two regions serialize."""
        omp45.register_kernel("k", cost_fn=lambda *a: big_cost(0.5))
        t0 = omp45.elapsed()
        omp45.target(0, "k", nowait=True)
        omp45.target(0, "k", nowait=True)
        omp45.taskwait()
        assert omp45.elapsed() - t0 > 0.9


class TestDependClauses:
    def test_depend_orders_tasks(self, omp45):
        omp45.register_kernel("k", cost_fn=lambda *a: big_cost(0.2))
        var = np.zeros(64)
        ev1 = omp45.target(0, "k", nowait=True, depend_out=[var])
        ev2 = omp45.target(0, "k", nowait=True, depend_in=[var])
        omp45.taskwait()
        assert ev2.timestamp >= ev1.timestamp

    def test_independent_depends_do_not_order(self, omp45):
        omp45.register_kernel("k", cost_fn=lambda *a: big_cost(0.2))
        v1, v2 = np.zeros(64), np.zeros(64)
        omp45.target(0, "k", nowait=True, depend_out=[v1])
        omp45.target(0, "k", nowait=True, depend_out=[v2])
        omp45.taskwait()  # no deadlock, both ran


class TestFunctional:
    def test_roundtrip_on_thread_backend(self):
        omp = OpenMPRuntime(
            platform=make_platform("HSW", 1), backend="thread", spec="4.5", trace=False
        )
        omp.register_kernel("dbl", fn=lambda x: np.multiply(x, 2.0, out=x))
        data = np.arange(8.0)
        omp.target_enter_data(0, [data])
        omp.target(0, "dbl", args=(data,))
        omp.target_exit_data(0, [data])
        np.testing.assert_array_equal(data, np.arange(8.0) * 2)
        omp.fini()
