"""Tests for the Offload-Streams and OpenCL comparator models."""

import numpy as np
import pytest

from repro import make_platform
from repro.models.offload_streams import OffloadStreamsRuntime
from repro.models.opencl_like import CLError, OpenCLRuntime
from repro.sim.kernels import KernelCost, dgemm


def big_cost(seconds: float) -> KernelCost:
    return KernelCost("default", flops=seconds * 0.45 * 1298.1e9, size=1e9)


class TestOffloadStreams:
    @pytest.fixture()
    def offl(self):
        return OffloadStreamsRuntime(platform=make_platform("HSW", 1), backend="sim")

    def test_streams_target_devices_only(self, offl):
        with pytest.raises(ValueError):
            offl.stream_create(device=5)

    def test_signal_wait_orders_across_streams(self, offl):
        offl.register_kernel("k", cost_fn=lambda *a: big_cost(0.2))
        s1 = offl.stream_create(0, ncores=30)
        s2 = offl.stream_create(0, ncores=30)
        a = np.zeros(1024)
        b = np.zeros(1024)
        offl.offload(s1, "k", args=(a,), signal="tagA")
        offl.offload(s2, "k", args=(b,), wait=["tagA"])
        offl.synchronize()
        tr = offl.hstreams.tracer
        computes = sorted(tr.filter(kind="compute"), key=lambda e: e.start)
        assert computes[1].start >= computes[0].end - 1e-9

    def test_wait_on_unsignaled_tag_fails(self, offl):
        offl.register_kernel("k", cost_fn=lambda *a: big_cost(0.1))
        s = offl.stream_create(0)
        with pytest.raises(ValueError):
            offl.offload(s, "k", wait=["never"])

    def test_offload_wait_blocks_host(self, offl):
        offl.register_kernel("k", cost_fn=lambda *a: big_cost(0.3))
        s = offl.stream_create(0)
        offl.offload(s, "k", args=(np.zeros(64),), signal="t")
        offl.offload_wait(["t"])
        assert offl.elapsed() >= 0.3

    def test_in_out_clauses_roundtrip_on_thread_backend(self):
        offl = OffloadStreamsRuntime(
            platform=make_platform("HSW", 1), backend="thread", trace=False
        )
        offl.register_kernel("dbl", fn=lambda x: np.multiply(x, 2.0, out=x))
        s = offl.stream_create(0, ncores=8)
        data = np.arange(8.0)
        offl.offload(s, "dbl", args=(data,), in_arrays=[data], out_arrays=[data])
        offl.synchronize()
        np.testing.assert_array_equal(data, np.arange(8.0) * 2)
        offl.fini()

    def test_stream_completed_polling(self, offl):
        offl.register_kernel("k", cost_fn=lambda *a: big_cost(0.5))
        s = offl.stream_create(0)
        offl.offload(s, "k", args=(np.zeros(64),))
        assert not offl.stream_completed(s)
        offl.synchronize()
        assert offl.stream_completed(s)

    def test_offload_transfer_signal(self, offl):
        s = offl.stream_create(0)
        offl.offload_transfer(s, np.zeros(1 << 20), to_device=True, signal="x")
        offl.offload_wait(["x"])


class TestOpenCL:
    @pytest.fixture()
    def cl(self):
        return OpenCLRuntime(platform=make_platform("HSW", 1), backend="sim")

    def _setup(self, cl):
        devs = cl.get_device_ids()
        ctx = cl.create_context(devs)
        q = cl.create_command_queue(ctx, devs[0])
        prog = cl.create_program_with_source(ctx, "__kernel void dgemm(...) {}")
        cl.build_program(prog)
        kern = cl.create_kernel(prog, "dgemm")
        return ctx, q, kern

    def test_boilerplate_object_discipline(self, cl):
        ctx, q, kern = self._setup(cl)
        ctx.release()
        with pytest.raises(CLError):
            cl.create_command_queue(ctx, 0)

    def test_kernel_requires_built_program(self, cl):
        ctx = cl.create_context(cl.get_device_ids())
        prog = cl.create_program_with_source(ctx, "src")
        with pytest.raises(CLError):
            cl.create_kernel(prog, "k")

    def test_queue_needs_device_in_context(self, cl):
        ctx = cl.create_context([0])
        with pytest.raises(CLError):
            cl.create_command_queue(ctx, 3)

    def test_clblas_dgemm_is_slow_on_knc(self, cl):
        """The paper's 35 GFl/s clBLAS measurement vs hStreams' 982."""
        ctx, q, kern = self._setup(cl)
        cl.register_kernel("dgemm", cost_fn=lambda *a: None)
        n = 4000
        buf = cl.create_buffer(ctx, 8 * n * n)
        cl.set_kernel_arg(kern, 0, buf)
        t0 = cl.elapsed()
        cl.enqueue_nd_range_kernel(q, kern, cost=dgemm(n, n, n))
        cl.finish(q)
        rate = 2 * n**3 / (cl.elapsed() - t0) / 1e9
        assert rate < 60  # demoted to the untuned clBLAS curve

    def test_in_order_queue_is_strict(self, cl):
        ctx = cl.create_context(cl.get_device_ids())
        q = cl.create_command_queue(ctx, 0)
        assert q._inner.strict_fifo

    def test_out_of_order_queue_relaxes(self, cl):
        ctx = cl.create_context(cl.get_device_ids())
        q = cl.create_command_queue(ctx, 0, out_of_order=True)
        assert not q._inner.strict_fifo

    def test_roundtrip_on_thread_backend(self):
        cl = OpenCLRuntime(
            platform=make_platform("HSW", 1), backend="thread", trace=False
        )
        cl.register_kernel("dbl", fn=lambda x: np.multiply(x, 2.0, out=x))
        ctx = cl.create_context(cl.get_device_ids())
        q = cl.create_command_queue(ctx, 0)
        prog = cl.create_program_with_source(ctx, "src")
        cl.build_program(prog)
        kern = cl.create_kernel(prog, "dbl")
        data = np.arange(8.0)
        out = np.zeros(8)
        buf = cl.create_buffer(ctx, data.nbytes)
        cl.enqueue_write_buffer(q, buf, data)
        cl.set_kernel_arg(kern, 0, buf)
        cl.enqueue_nd_range_kernel(q, kern)
        cl.enqueue_read_buffer(q, buf, out)
        cl.finish(q)
        np.testing.assert_array_equal(out, np.arange(8.0) * 2)
        cl.fini()
