"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Engine,
    Event,
    Interrupt,
    Resource,
    SimError,
)


class TestEventBasics:
    def test_new_event_is_untriggered(self):
        eng = Engine()
        ev = eng.event()
        assert not ev.triggered

    def test_trigger_sets_value(self):
        eng = Engine()
        ev = eng.event()
        ev.trigger(42)
        assert ev.triggered and ev.ok
        assert ev.value == 42

    def test_value_before_trigger_raises(self):
        eng = Engine()
        ev = eng.event()
        with pytest.raises(SimError):
            _ = ev.value

    def test_double_trigger_raises(self):
        eng = Engine()
        ev = eng.event()
        ev.trigger()
        with pytest.raises(SimError):
            ev.trigger()

    def test_fail_records_exception(self):
        eng = Engine()
        ev = eng.event()
        err = RuntimeError("boom")
        ev.fail(err)
        assert ev.triggered and not ev.ok
        assert ev.value is err

    def test_fail_requires_exception(self):
        eng = Engine()
        ev = eng.event()
        with pytest.raises(SimError):
            ev.fail("not an exception")

    def test_callback_after_trigger_runs_immediately(self):
        eng = Engine()
        ev = eng.event()
        ev.trigger("x")
        seen = []
        ev.add_callback(lambda e: seen.append(e.value))
        assert seen == ["x"]

    def test_callbacks_run_in_registration_order(self):
        eng = Engine()
        ev = eng.event()
        order = []
        ev.add_callback(lambda e: order.append(1))
        ev.add_callback(lambda e: order.append(2))
        ev.trigger()
        assert order == [1, 2]


class TestTimeoutAndClock:
    def test_timeout_advances_clock(self):
        eng = Engine()
        eng.timeout(2.5)
        eng.run()
        assert eng.now == pytest.approx(2.5)

    def test_negative_delay_rejected(self):
        eng = Engine()
        with pytest.raises(SimError):
            eng.timeout(-1.0)

    def test_run_until_stops_clock_at_limit(self):
        eng = Engine()
        eng.timeout(10.0)
        eng.run(until=4.0)
        assert eng.now == pytest.approx(4.0)

    def test_same_time_events_fire_in_insertion_order(self):
        eng = Engine()
        order = []
        eng.timeout(1.0).add_callback(lambda e: order.append("a"))
        eng.timeout(1.0).add_callback(lambda e: order.append("b"))
        eng.timeout(1.0).add_callback(lambda e: order.append("c"))
        eng.run()
        assert order == ["a", "b", "c"]

    def test_step_on_empty_calendar_raises(self):
        eng = Engine()
        with pytest.raises(SimError):
            eng.step()

    def test_determinism_across_runs(self):
        def build():
            eng = Engine()
            log = []

            def proc(tag, dt):
                yield eng.timeout(dt)
                log.append((tag, eng.now))
                yield eng.timeout(dt)
                log.append((tag, eng.now))

            for i, dt in enumerate([0.3, 0.1, 0.2]):
                eng.process(proc(i, dt))
            eng.run()
            return log

        assert build() == build()


class TestProcesses:
    def test_process_result_is_return_value(self):
        eng = Engine()

        def work():
            yield eng.timeout(1.0)
            return "done"

        p = eng.process(work())
        result = eng.run_until_event(p)
        assert result == "done"

    def test_process_receives_timeout_value(self):
        eng = Engine()
        got = []

        def work():
            v = yield eng.timeout(1.0, value="payload")
            got.append(v)

        eng.process(work())
        eng.run()
        assert got == ["payload"]

    def test_process_sequencing(self):
        eng = Engine()
        times = []

        def work():
            yield eng.timeout(1.0)
            times.append(eng.now)
            yield eng.timeout(2.0)
            times.append(eng.now)

        eng.process(work())
        eng.run()
        assert times == [pytest.approx(1.0), pytest.approx(3.0)]

    def test_failed_event_raises_inside_process(self):
        eng = Engine()
        caught = []

        def work():
            ev = eng.event()
            ev.fail(ValueError("bad"))
            try:
                yield ev
            except ValueError as exc:
                caught.append(str(exc))

        eng.process(work())
        eng.run()
        assert caught == ["bad"]

    def test_yielding_non_event_fails_loudly(self):
        eng = Engine()

        def work():
            yield 7

        p = eng.process(work())
        with pytest.raises(SimError):
            eng.run()
            if not p.ok:
                raise p.value

    def test_interrupt_is_catchable(self):
        eng = Engine()
        log = []

        def sleeper():
            try:
                yield eng.timeout(100.0)
            except Interrupt as i:
                log.append(("interrupted", i.cause, eng.now))

        p = eng.process(sleeper())

        def interrupter():
            yield eng.timeout(1.0)
            p.interrupt(cause="hurry")

        eng.process(interrupter())
        eng.run()
        assert log == [("interrupted", "hurry", pytest.approx(1.0))]

    def test_interrupt_finished_process_raises(self):
        eng = Engine()

        def quick():
            yield eng.timeout(0.1)

        p = eng.process(quick())
        eng.run()
        with pytest.raises(SimError):
            p.interrupt()

    def test_deadlock_detection(self):
        eng = Engine()
        never = eng.event()

        def waiter():
            yield never

        p = eng.process(waiter())
        with pytest.raises(SimError, match="deadlock"):
            eng.run_until_event(p)


class TestConditions:
    def test_all_of_waits_for_every_event(self):
        eng = Engine()
        t1, t2 = eng.timeout(1.0), eng.timeout(3.0)
        done = []
        AllOf(eng, [t1, t2]).add_callback(lambda e: done.append(eng.now))
        eng.run()
        assert done == [pytest.approx(3.0)]

    def test_any_of_fires_on_first(self):
        eng = Engine()
        t1, t2 = eng.timeout(1.0), eng.timeout(3.0)
        done = []
        AnyOf(eng, [t1, t2]).add_callback(lambda e: done.append(eng.now))
        eng.run()
        assert done == [pytest.approx(1.0)]

    def test_all_of_empty_fires_immediately(self):
        eng = Engine()
        fired = []
        eng.all_of([]).add_callback(lambda e: fired.append(eng.now))
        eng.run()
        assert fired == [pytest.approx(0.0)]

    def test_all_of_with_pretriggered_events(self):
        eng = Engine()
        e1 = eng.event()
        e1.trigger("v1")
        t = eng.timeout(2.0, value="v2")
        values = []
        eng.all_of([e1, t]).add_callback(lambda e: values.append(e.value))
        eng.run()
        assert values and values[0][e1] == "v1" and values[0][t] == "v2"

    def test_all_of_propagates_failure(self):
        eng = Engine()
        good = eng.timeout(1.0)
        bad = eng.event()
        cond = eng.all_of([good, bad])
        bad.fail(RuntimeError("nope"))
        eng.run()
        assert cond.triggered and not cond.ok


class TestResource:
    def test_capacity_one_serializes(self):
        eng = Engine()
        res = Resource(eng, capacity=1)
        finish = []

        def user(tag):
            yield res.request()
            yield eng.timeout(1.0)
            res.release()
            finish.append((tag, eng.now))

        eng.process(user("a"))
        eng.process(user("b"))
        eng.run()
        assert finish == [("a", pytest.approx(1.0)), ("b", pytest.approx(2.0))]

    def test_capacity_two_allows_pairwise_concurrency(self):
        eng = Engine()
        res = Resource(eng, capacity=2)
        finish = []

        def user(tag):
            yield res.request()
            yield eng.timeout(1.0)
            res.release()
            finish.append((tag, eng.now))

        for tag in "abc":
            eng.process(user(tag))
        eng.run()
        assert [t for _, t in finish] == [
            pytest.approx(1.0),
            pytest.approx(1.0),
            pytest.approx(2.0),
        ]

    def test_fifo_grant_order(self):
        eng = Engine()
        res = Resource(eng, capacity=1)
        grants = []

        def user(tag):
            yield res.request()
            grants.append(tag)
            yield eng.timeout(0.5)
            res.release()

        for tag in ["first", "second", "third"]:
            eng.process(user(tag))
        eng.run()
        assert grants == ["first", "second", "third"]

    def test_release_when_idle_raises(self):
        eng = Engine()
        res = Resource(eng, capacity=1)
        with pytest.raises(SimError):
            res.release()

    def test_invalid_capacity_rejected(self):
        eng = Engine()
        with pytest.raises(SimError):
            Resource(eng, capacity=0)

    def test_use_helper(self):
        eng = Engine()
        res = Resource(eng, capacity=1)
        done = []

        def user(tag):
            yield from res.use(1.0)
            done.append((tag, eng.now))

        eng.process(user("x"))
        eng.process(user("y"))
        eng.run()
        assert done == [("x", pytest.approx(1.0)), ("y", pytest.approx(2.0))]

    def test_queue_and_in_use_counters(self):
        eng = Engine()
        res = Resource(eng, capacity=1, name="r")

        def holder():
            yield res.request()
            yield eng.timeout(5.0)
            res.release()

        def waiter():
            yield res.request()
            res.release()

        eng.process(holder())
        eng.process(waiter())
        eng.run(until=1.0)
        assert res.in_use == 1
        assert res.queued == 1
