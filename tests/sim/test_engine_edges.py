"""Edge-case tests for the simulation engine's less-traveled paths."""

import pytest

from repro.sim.engine import AnyOf, Engine, SimError


class TestConditionFailures:
    def test_any_of_propagates_failure(self):
        eng = Engine()
        good = eng.timeout(5.0)
        bad = eng.event()
        cond = AnyOf(eng, [good, bad])
        bad.fail(RuntimeError("nope"))
        eng.run()
        assert cond.triggered and not cond.ok
        assert isinstance(cond.value, RuntimeError)

    def test_any_of_value_maps_triggered_children(self):
        eng = Engine()
        t1 = eng.timeout(1.0, value="first")
        t2 = eng.timeout(5.0, value="second")
        values = []
        eng.any_of([t1, t2]).add_callback(lambda e: values.append(dict(e.value)))
        eng.run(until=2.0)
        assert values and values[0][t1] == "first"
        assert t2 not in values[0]

    def test_condition_rejects_non_events(self):
        eng = Engine()
        with pytest.raises(SimError):
            eng.all_of([eng.timeout(1.0), "not an event"])

    def test_any_of_empty_fires_immediately(self):
        eng = Engine()
        fired = []
        eng.any_of([]).add_callback(lambda e: fired.append(eng.now))
        eng.run()
        assert fired == [pytest.approx(0.0)]


class TestRunLimits:
    def test_run_until_event_time_limit(self):
        eng = Engine()
        target = eng.event()

        def ticker():
            while True:
                yield eng.timeout(1.0)

        eng.process(ticker())
        with pytest.raises(SimError, match="time limit"):
            eng.run_until_event(target, limit=10.0)

    def test_run_until_event_returns_value(self):
        eng = Engine()
        ev = eng.timeout(2.0, value=42)
        assert eng.run_until_event(ev) == 42

    def test_run_until_event_raises_failure(self):
        eng = Engine()
        ev = eng.event()

        def failer():
            yield eng.timeout(1.0)
            ev.fail(ValueError("doomed"))

        eng.process(failer())
        with pytest.raises(ValueError, match="doomed"):
            eng.run_until_event(ev)

    def test_pending_count(self):
        eng = Engine()
        assert eng.pending_count == 0
        eng.timeout(1.0)
        eng.timeout(2.0)
        assert eng.pending_count == 2
        eng.run()
        assert eng.pending_count == 0


class TestProcessReturnPaths:
    def test_process_that_never_yields(self):
        eng = Engine()

        def instant():
            return "done"
            yield  # pragma: no cover - makes it a generator

        p = eng.process(instant())
        assert eng.run_until_event(p) == "done"

    def test_nested_processes(self):
        eng = Engine()
        log = []

        def child(tag):
            yield eng.timeout(1.0)
            log.append(tag)
            return tag

        def parent():
            a = eng.process(child("a"))
            b = eng.process(child("b"))
            got_a = yield a
            got_b = yield b
            log.append((got_a, got_b))

        eng.process(parent())
        eng.run()
        assert log[-1] == ("a", "b")

    def test_process_waits_on_another_process(self):
        eng = Engine()
        order = []

        def slow():
            yield eng.timeout(3.0)
            order.append("slow")

        def waiter(target):
            yield target
            order.append("waiter")

        p = eng.process(slow())
        eng.process(waiter(p))
        eng.run()
        assert order == ["slow", "waiter"]
