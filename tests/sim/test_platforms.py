"""Tests for platform presets (the paper's Fig. 2 machines)."""

import pytest

from repro.sim.engine import Engine
from repro.sim.platforms import HSW, IVB, K40X, KNC_7120A, make_platform


class TestMakePlatform:
    def test_default_is_hsw_plus_one_knc(self):
        p = make_platform()
        assert p.host is HSW
        assert p.ncards == 1
        assert p.cards[0] is KNC_7120A

    def test_two_cards(self):
        p = make_platform("IVB", ncards=2)
        assert p.host is IVB
        assert len(p.cards) == 2
        assert p.name == "IVB+2KNC"

    def test_host_only(self):
        p = make_platform("HSW", ncards=0)
        assert p.ncards == 0
        assert p.devices == (HSW,)
        assert p.name == "HSW"

    def test_k40x_card(self):
        p = make_platform("HSW", ncards=1, card="K40X")
        assert p.cards[0] is K40X

    def test_unknown_host_rejected(self):
        with pytest.raises(ValueError):
            make_platform("SKYLAKE")

    def test_unknown_card_rejected(self):
        with pytest.raises(ValueError):
            make_platform("HSW", ncards=1, card="H100")

    def test_negative_cards_rejected(self):
        with pytest.raises(ValueError):
            make_platform("HSW", ncards=-1)

    def test_case_insensitive(self):
        p = make_platform("hsw", ncards=1, card="knc")
        assert p.host is HSW


class TestPlatform:
    def test_device_indexing(self):
        p = make_platform("HSW", ncards=2)
        assert p.device(0) is HSW
        assert p.device(1) is KNC_7120A
        assert p.device(2) is KNC_7120A

    def test_make_links_one_pair_per_card(self):
        p = make_platform("HSW", ncards=2)
        links = p.make_links(Engine())
        assert sorted(links) == [1, 2]
        assert links[1].h2d.bandwidth_gbs == pytest.approx(6.8)

    def test_host_only_platform_has_no_links(self):
        p = make_platform("HSW", ncards=0)
        assert p.make_links(Engine()) == {}

    def test_describe_mentions_host_and_cards(self):
        text = make_platform("IVB", ncards=2).describe()
        assert "IVB" in text and "KNC" in text

    def test_knc_memory_is_16gb(self):
        """Fig. 2: the card's 16 GB GDDR5 constrains problem sizes."""
        assert KNC_7120A.ram_gb == pytest.approx(16.0)

    def test_hsw_is_roughly_twice_ivb_peak(self):
        """The paper attributes lower HSW speedups to its ~2x peak."""
        ratio = HSW.peak_dp_gflops / IVB.peak_dp_gflops
        assert 1.9 < ratio < 2.4
