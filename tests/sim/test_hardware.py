"""Unit and property tests for device models and efficiency curves."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.hardware import Device, EfficiencyCurve
from repro.sim.platforms import HSW, IVB, KNC_7120A


class TestEfficiencyCurve:
    def test_monotone_examples(self):
        c = EfficiencyCurve(eff_max=0.8, half_size=100.0)
        assert c(10) < c(100) < c(1000)

    def test_half_size_gives_half_of_max(self):
        c = EfficiencyCurve(eff_max=0.8, half_size=100.0, eff_min=0.0)
        assert c(100) == pytest.approx(0.4)

    def test_zero_half_size_is_flat(self):
        c = EfficiencyCurve(eff_max=0.7, half_size=0.0)
        assert c(1) == pytest.approx(0.7)
        assert c(1e9) == pytest.approx(0.7)

    def test_nonpositive_size_floor(self):
        c = EfficiencyCurve(eff_max=0.8, half_size=100.0, eff_min=0.1)
        assert c(0) == pytest.approx(0.1)
        assert c(-5) == pytest.approx(0.1)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            EfficiencyCurve(eff_max=1.2, half_size=10.0)
        with pytest.raises(ValueError):
            EfficiencyCurve(eff_max=0.5, half_size=10.0, eff_min=0.6)
        with pytest.raises(ValueError):
            EfficiencyCurve(eff_max=0.5, half_size=-1.0)

    @given(
        eff_max=st.floats(0.05, 1.0),
        half=st.floats(0.0, 1e5),
        s1=st.floats(1.0, 1e7),
        s2=st.floats(1.0, 1e7),
    )
    def test_property_monotone_nondecreasing(self, eff_max, half, s1, s2):
        c = EfficiencyCurve(eff_max=eff_max, half_size=half)
        lo, hi = min(s1, s2), max(s1, s2)
        assert c(lo) <= c(hi) + 1e-12

    @given(eff_max=st.floats(0.05, 1.0), half=st.floats(0.0, 1e5), s=st.floats(0.0, 1e9))
    def test_property_bounded(self, eff_max, half, s):
        c = EfficiencyCurve(eff_max=eff_max, half_size=half)
        assert 0.0 < c(s) <= eff_max + 1e-12


class TestDevicePeaks:
    """Peaks must match the Fig. 2 architectural arithmetic."""

    def test_ivb_peak(self):
        assert IVB.peak_dp_gflops == pytest.approx(24 * 2.7 * 8.0)

    def test_hsw_peak(self):
        assert HSW.peak_dp_gflops == pytest.approx(28 * 2.6 * 16.0)

    def test_knc_peak(self):
        assert KNC_7120A.peak_dp_gflops == pytest.approx(61 * 1.33 * 16.0)

    def test_thread_counts(self):
        assert IVB.total_threads == 48
        assert HSW.total_threads == 56
        assert KNC_7120A.total_threads == 244


class TestCalibratedRates:
    """Asymptotic DGEMM rates must match the paper's measured values."""

    @pytest.mark.parametrize(
        "device,expected",
        [(IVB, 475.0), (HSW, 902.0), (KNC_7120A, 982.0)],
    )
    def test_dgemm_asymptote(self, device, expected):
        rate = device.gflops("dgemm", size=1e7)
        assert rate == pytest.approx(expected, rel=0.01)

    def test_small_tiles_run_below_asymptote(self):
        assert KNC_7120A.gflops("dgemm", 128) < 0.5 * KNC_7120A.gflops("dgemm", 1e7)

    def test_knc_dpotrf_is_terrible(self):
        """The latency-bound panel is why MAGMA ships DPOTF2 to the host."""
        knc = KNC_7120A.gflops("dpotrf", 4000)
        hsw = HSW.gflops("dpotrf", 4000)
        assert knc < 0.35 * hsw

    def test_unknown_kernel_uses_default_curve(self):
        rate = HSW.gflops("exotic_kernel", 1e6)
        assert rate > 0


class TestComputeTime:
    def test_partial_cores_scale_rate(self):
        full = HSW.gflops("dgemm", 2000, cores=28)
        half = HSW.gflops("dgemm", 2000, cores=14)
        assert half == pytest.approx(full / 2)

    def test_cores_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            HSW.gflops("dgemm", 100, cores=0)
        with pytest.raises(ValueError):
            HSW.gflops("dgemm", 100, cores=1000)

    def test_compute_time_includes_fork_join(self):
        t = HSW.compute_time("dgemm", flops=0.0, size=1.0)
        assert t == pytest.approx(HSW.fork_join_s)

    def test_memory_bound_work_uses_bandwidth(self):
        # Tiny flops, huge traffic: time ~ bytes / bandwidth.
        nbytes = 1e9
        t = HSW.compute_time("dgemm", flops=1.0, size=1.0, bytes_moved=nbytes)
        assert t == pytest.approx(nbytes / (HSW.mem_bw_gbs * 1e9) + HSW.fork_join_s)

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            HSW.compute_time("dgemm", flops=-1.0, size=10.0)

    @given(flops=st.floats(0, 1e13), size=st.floats(1, 1e5))
    def test_property_time_nonnegative_and_monotone_in_flops(self, flops, size):
        t1 = KNC_7120A.compute_time("dgemm", flops, size)
        t2 = KNC_7120A.compute_time("dgemm", flops * 2, size)
        assert 0 < t1 <= t2 + 1e-15


class TestDeviceVariants:
    def test_with_efficiencies_overrides_one_curve(self):
        tweaked = HSW.with_efficiencies(dgemm=EfficiencyCurve(0.5, 0.0))
        assert tweaked.gflops("dgemm", 1e7) == pytest.approx(
            0.5 * HSW.peak_dp_gflops
        )
        # Other curves are untouched.
        assert tweaked.gflops("dtrsm", 1e6) == pytest.approx(
            HSW.gflops("dtrsm", 1e6)
        )

    def test_scaled_clock(self):
        fast = IVB.scaled("IVB-oc", clock_factor=2.0)
        assert fast.peak_dp_gflops == pytest.approx(2 * IVB.peak_dp_gflops)
        assert fast.name == "IVB-oc"

    def test_invalid_device_construction(self):
        with pytest.raises(ValueError):
            Device(
                name="bad",
                kind="xeon",
                sockets=0,
                cores_per_socket=4,
                threads_per_core=1,
                clock_ghz=2.0,
                dp_flops_per_cycle=8,
                sp_flops_per_cycle=16,
                ram_gb=1,
                mem_bw_gbs=10,
            )
