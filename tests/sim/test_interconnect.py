"""Tests for the PCIe-like link model and the fabric topology."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import Engine
from repro.sim.interconnect import Fabric, Link, LinkPair


class TestLink:
    def test_transfer_time_formula(self):
        eng = Engine()
        link = Link(eng, bandwidth_gbs=6.8, latency_s=1e-5)
        assert link.transfer_time(6.8e9) == pytest.approx(1.0 + 1e-5)

    def test_zero_bytes_costs_latency_only(self):
        eng = Engine()
        link = Link(eng, bandwidth_gbs=10.0, latency_s=2e-5)
        assert link.transfer_time(0) == pytest.approx(2e-5)

    def test_negative_bytes_rejected(self):
        eng = Engine()
        link = Link(eng, bandwidth_gbs=10.0, latency_s=0)
        with pytest.raises(ValueError):
            link.transfer_time(-1)

    def test_invalid_parameters_rejected(self):
        eng = Engine()
        with pytest.raises(ValueError):
            Link(eng, bandwidth_gbs=0.0, latency_s=0)
        with pytest.raises(ValueError):
            Link(eng, bandwidth_gbs=1.0, latency_s=-1)

    def test_same_direction_transfers_serialize(self):
        eng = Engine()
        link = Link(eng, bandwidth_gbs=1.0, latency_s=0.0)
        done = []
        link.transfer(int(1e9)).add_callback(lambda e: done.append(eng.now))
        link.transfer(int(1e9)).add_callback(lambda e: done.append(eng.now))
        eng.run()
        assert done == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_accounting(self):
        eng = Engine()
        link = Link(eng, bandwidth_gbs=1.0, latency_s=0.0)
        link.transfer(1000)
        link.transfer(500)
        eng.run()
        assert link.bytes_moved == 1500

    @given(nbytes=st.integers(0, int(1e10)), bw=st.floats(0.1, 100.0))
    def test_property_transfer_time_positive_monotone(self, nbytes, bw):
        eng = Engine()
        link = Link(eng, bandwidth_gbs=bw, latency_s=1e-6)
        t1 = link.transfer_time(nbytes)
        t2 = link.transfer_time(nbytes * 2)
        assert 0 < t1 <= t2 + 1e-15


class TestLinkPair:
    def test_opposite_directions_overlap(self):
        eng = Engine()
        pair = LinkPair(eng, bandwidth_gbs=1.0, latency_s=0.0)
        done = []
        pair.h2d.transfer(int(1e9)).add_callback(lambda e: done.append(("h2d", eng.now)))
        pair.d2h.transfer(int(1e9)).add_callback(lambda e: done.append(("d2h", eng.now)))
        eng.run()
        # Full duplex: both finish at t=1, not serialized to t=2.
        assert dict(done)["h2d"] == pytest.approx(1.0)
        assert dict(done)["d2h"] == pytest.approx(1.0)

    def test_direction_selector(self):
        eng = Engine()
        pair = LinkPair(eng, bandwidth_gbs=2.0, latency_s=0.0)
        assert pair.direction(to_device=True) is pair.h2d
        assert pair.direction(to_device=False) is pair.d2h

    def test_asymmetric_bandwidth(self):
        eng = Engine()
        pair = LinkPair(eng, bandwidth_gbs=8.0, latency_s=0.0, d2h_bandwidth_gbs=4.0)
        assert pair.d2h.transfer_time(4e9) == pytest.approx(1.0)
        assert pair.h2d.transfer_time(8e9) == pytest.approx(1.0)

    def test_pair_accounting(self):
        eng = Engine()
        pair = LinkPair(eng, bandwidth_gbs=1.0, latency_s=0.0)
        pair.h2d.transfer(100)
        pair.d2h.transfer(200)
        eng.run()
        assert pair.bytes_moved == 300


class TestLinkAccounting:
    """busy_time/bytes are charged when the wire is held; waiting is
    charged to queue_wait — never conflated."""

    def test_queued_transfer_charges_wait_not_busy(self):
        eng = Engine()
        link = Link(eng, bandwidth_gbs=1.0, latency_s=0.0)
        link.transfer(int(1e9))
        link.transfer(int(1e9))
        eng.run()
        # Each transfer held the wire 1.0s; the second waited 1.0s first.
        assert link.busy_time == pytest.approx(2.0)
        assert link.queue_wait == pytest.approx(1.0)
        assert link.bytes_moved == int(2e9)

    def test_uncontended_transfer_has_zero_wait(self):
        eng = Engine()
        link = Link(eng, bandwidth_gbs=1.0, latency_s=0.0)
        link.transfer(int(1e9))
        eng.run()
        assert link.queue_wait == 0.0
        assert link.busy_time == pytest.approx(1.0)

    def test_pair_aggregates_queue_wait(self):
        eng = Engine()
        pair = LinkPair(eng, bandwidth_gbs=1.0, latency_s=0.0)
        pair.h2d.transfer(int(1e9))
        pair.h2d.transfer(int(1e9))
        pair.d2h.transfer(int(1e9))
        eng.run()
        assert pair.queue_wait == pytest.approx(1.0)  # only the queued h2d


def make_fabric(eng, ndoms=2, host_bus=False, peer_enabled=False, bw=1.0):
    ports = {
        d: LinkPair(eng, bandwidth_gbs=bw, latency_s=0.0, name=f"p{d}")
        for d in range(1, ndoms + 1)
    }
    return Fabric(eng, ports, host_bus=host_bus, peer_enabled=peer_enabled)


class TestFabric:
    def test_legacy_mode_keeps_links_independent(self):
        """host_bus=False, peer_enabled=False is the original model:
        host-rooted transfers to distinct domains fully overlap."""
        eng = Engine()
        fab = make_fabric(eng)
        done = []
        fab.transfer(0, 1, int(1e9)).add_callback(lambda e: done.append(eng.now))
        fab.transfer(0, 2, int(1e9)).add_callback(lambda e: done.append(eng.now))
        eng.run()
        assert done == [pytest.approx(1.0), pytest.approx(1.0)]
        assert fab.host_bus_wait == 0.0 and not fab.has_host_bus

    def test_host_bus_serializes_across_destinations(self):
        eng = Engine()
        fab = make_fabric(eng, host_bus=True)
        done = []
        fab.transfer(0, 1, int(1e9)).add_callback(lambda e: done.append(eng.now))
        fab.transfer(0, 2, int(1e9)).add_callback(lambda e: done.append(eng.now))
        eng.run()
        # Same direction, different cards: the shared root complex makes
        # the second wait a full wire time.
        assert done == [pytest.approx(1.0), pytest.approx(2.0)]
        assert fab.host_bus_wait == pytest.approx(1.0)

    def test_host_bus_directions_are_independent(self):
        eng = Engine()
        fab = make_fabric(eng, host_bus=True)
        done = {}
        fab.transfer(0, 1, int(1e9)).add_callback(lambda e: done.setdefault("tx", eng.now))
        fab.transfer(2, 0, int(1e9)).add_callback(lambda e: done.setdefault("rx", eng.now))
        eng.run()
        assert done["tx"] == pytest.approx(1.0)
        assert done["rx"] == pytest.approx(1.0)

    def test_peer_disabled_raises_the_staging_error(self):
        eng = Engine()
        fab = make_fabric(eng)
        assert not fab.routes(1, 2)
        with pytest.raises(ValueError, match="stage via the host"):
            fab.transfer(1, 2, 100)

    def test_unknown_node_rejected(self):
        eng = Engine()
        fab = make_fabric(eng)
        with pytest.raises(ValueError, match="no fabric node 9"):
            fab.transfer(0, 9, 100)

    def test_peer_hop_holds_both_ports(self):
        eng = Engine()
        fab = make_fabric(eng, peer_enabled=True)
        assert fab.routes(1, 2)
        done = []
        fab.transfer(1, 2, int(1e9)).add_callback(lambda e: done.append(eng.now))
        eng.run()
        assert done == [pytest.approx(1.0)]
        assert fab.peer_transfers == 1 and fab.peer_bytes_moved == int(1e9)
        # Both the source egress and destination ingress were charged.
        assert fab.ports[1].d2h.bytes_moved == int(1e9)
        assert fab.ports[2].h2d.bytes_moved == int(1e9)

    def test_peer_hop_is_bottlenecked_by_the_slower_port(self):
        eng = Engine()
        ports = {
            1: LinkPair(eng, bandwidth_gbs=4.0, latency_s=0.0, name="p1"),
            2: LinkPair(eng, bandwidth_gbs=1.0, latency_s=0.0, name="p2"),
        }
        fab = Fabric(eng, ports, peer_enabled=True)
        assert fab.peer_time(1, 2, int(1e9)) == pytest.approx(1.0)
        done = []
        fab.transfer(1, 2, int(1e9)).add_callback(lambda e: done.append(eng.now))
        eng.run()
        assert done == [pytest.approx(1.0)]

    def test_disjoint_peer_hops_overlap(self):
        """Distinct hops of a store-and-forward chain use disjoint port
        pairs — the property that makes pipelined multicast win."""
        eng = Engine()
        fab = make_fabric(eng, ndoms=4, peer_enabled=True)
        done = []
        fab.transfer(1, 2, int(1e9)).add_callback(lambda e: done.append(eng.now))
        fab.transfer(3, 4, int(1e9)).add_callback(lambda e: done.append(eng.now))
        eng.run()
        assert done == [pytest.approx(1.0), pytest.approx(1.0)]

    def test_self_transfer_is_free(self):
        eng = Engine()
        fab = make_fabric(eng)
        done = []
        fab.transfer(1, 1, 100).add_callback(lambda e: done.append(eng.now))
        eng.run()
        assert done == [pytest.approx(0.0)]
        assert fab.ports[1].bytes_moved == 0

    def test_metrics_shape_and_totals(self):
        eng = Engine()
        fab = make_fabric(eng, host_bus=True, peer_enabled=True)
        fab.transfer(0, 1, 1000)
        fab.transfer(0, 2, 1000)
        fab.transfer(1, 2, 500)
        eng.run()
        m = fab.metrics()
        assert {
            "bytes_moved", "busy_time_s", "queue_wait_s", "host_bus",
            "host_bus_wait_s", "peer_enabled", "peer_bytes_moved",
            "peer_transfers", "links",
        } <= set(m)
        # Peer hops are charged on both ports, so they count twice in
        # the per-link roll-up but once in peer_bytes_moved.
        assert m["bytes_moved"] == 2000 + 2 * 500
        assert m["peer_bytes_moved"] == 500 and m["peer_transfers"] == 1
        assert m["host_bus"] is True and m["peer_enabled"] is True
        assert set(m["links"]) == {"1", "2"}
        assert m["links"]["1"]["h2d_bytes"] == 1000
        assert m["links"]["1"]["d2h_bytes"] == 500
