"""Tests for the PCIe-like link model."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import Engine
from repro.sim.interconnect import Link, LinkPair


class TestLink:
    def test_transfer_time_formula(self):
        eng = Engine()
        link = Link(eng, bandwidth_gbs=6.8, latency_s=1e-5)
        assert link.transfer_time(6.8e9) == pytest.approx(1.0 + 1e-5)

    def test_zero_bytes_costs_latency_only(self):
        eng = Engine()
        link = Link(eng, bandwidth_gbs=10.0, latency_s=2e-5)
        assert link.transfer_time(0) == pytest.approx(2e-5)

    def test_negative_bytes_rejected(self):
        eng = Engine()
        link = Link(eng, bandwidth_gbs=10.0, latency_s=0)
        with pytest.raises(ValueError):
            link.transfer_time(-1)

    def test_invalid_parameters_rejected(self):
        eng = Engine()
        with pytest.raises(ValueError):
            Link(eng, bandwidth_gbs=0.0, latency_s=0)
        with pytest.raises(ValueError):
            Link(eng, bandwidth_gbs=1.0, latency_s=-1)

    def test_same_direction_transfers_serialize(self):
        eng = Engine()
        link = Link(eng, bandwidth_gbs=1.0, latency_s=0.0)
        done = []
        link.transfer(int(1e9)).add_callback(lambda e: done.append(eng.now))
        link.transfer(int(1e9)).add_callback(lambda e: done.append(eng.now))
        eng.run()
        assert done == [pytest.approx(1.0), pytest.approx(2.0)]

    def test_accounting(self):
        eng = Engine()
        link = Link(eng, bandwidth_gbs=1.0, latency_s=0.0)
        link.transfer(1000)
        link.transfer(500)
        eng.run()
        assert link.bytes_moved == 1500

    @given(nbytes=st.integers(0, int(1e10)), bw=st.floats(0.1, 100.0))
    def test_property_transfer_time_positive_monotone(self, nbytes, bw):
        eng = Engine()
        link = Link(eng, bandwidth_gbs=bw, latency_s=1e-6)
        t1 = link.transfer_time(nbytes)
        t2 = link.transfer_time(nbytes * 2)
        assert 0 < t1 <= t2 + 1e-15


class TestLinkPair:
    def test_opposite_directions_overlap(self):
        eng = Engine()
        pair = LinkPair(eng, bandwidth_gbs=1.0, latency_s=0.0)
        done = []
        pair.h2d.transfer(int(1e9)).add_callback(lambda e: done.append(("h2d", eng.now)))
        pair.d2h.transfer(int(1e9)).add_callback(lambda e: done.append(("d2h", eng.now)))
        eng.run()
        # Full duplex: both finish at t=1, not serialized to t=2.
        assert dict(done)["h2d"] == pytest.approx(1.0)
        assert dict(done)["d2h"] == pytest.approx(1.0)

    def test_direction_selector(self):
        eng = Engine()
        pair = LinkPair(eng, bandwidth_gbs=2.0, latency_s=0.0)
        assert pair.direction(to_device=True) is pair.h2d
        assert pair.direction(to_device=False) is pair.d2h

    def test_asymmetric_bandwidth(self):
        eng = Engine()
        pair = LinkPair(eng, bandwidth_gbs=8.0, latency_s=0.0, d2h_bandwidth_gbs=4.0)
        assert pair.d2h.transfer_time(4e9) == pytest.approx(1.0)
        assert pair.h2d.transfer_time(8e9) == pytest.approx(1.0)

    def test_pair_accounting(self):
        eng = Engine()
        pair = LinkPair(eng, bandwidth_gbs=1.0, latency_s=0.0)
        pair.h2d.transfer(100)
        pair.d2h.transfer(200)
        eng.run()
        assert pair.bytes_moved == 300
