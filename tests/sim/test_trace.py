"""Tests for timeline tracing."""

import pytest

from repro.sim.trace import TraceEvent, Tracer


class TestTraceEvent:
    def test_duration(self):
        ev = TraceEvent("s0", 1.0, 3.5, "dgemm")
        assert ev.duration == pytest.approx(2.5)

    def test_backwards_interval_rejected(self):
        with pytest.raises(ValueError):
            TraceEvent("s0", 2.0, 1.0, "bad")


class TestTracer:
    def make(self):
        tr = Tracer()
        tr.record("s0", 0.0, 2.0, "gemm0", kind="compute")
        tr.record("s0", 3.0, 4.0, "gemm1", kind="compute")
        tr.record("link", 1.0, 3.5, "xferA", kind="transfer")
        tr.record("s1", 0.5, 1.5, "gemm2", kind="compute")
        return tr

    def test_lane_order_is_first_appearance(self):
        assert self.make().lanes() == ["s0", "link", "s1"]

    def test_span(self):
        assert self.make().span() == pytest.approx(4.0)

    def test_empty_span_is_zero(self):
        assert Tracer().span() == 0.0

    def test_busy_time_merges_overlaps(self):
        tr = Tracer()
        tr.record("s0", 0.0, 2.0, "a")
        tr.record("s0", 1.0, 3.0, "b")
        tr.record("s0", 5.0, 6.0, "c")
        assert tr.busy_time("s0") == pytest.approx(4.0)

    def test_busy_time_by_kind(self):
        tr = self.make()
        assert tr.busy_time("s0", kind="transfer") == 0.0
        assert tr.busy_time("s0", kind="compute") == pytest.approx(3.0)

    def test_utilization(self):
        tr = self.make()
        assert tr.utilization("s0") == pytest.approx(3.0 / 4.0)

    def test_overlap_compute_transfer(self):
        tr = self.make()
        # transfer [1, 3.5] overlaps compute on [1,2] (s0), [1,1.5] (s1),
        # [3,3.5] (s0) -> union of compute during transfer = [1,2]+[3,3.5]
        assert tr.overlap("compute", "transfer") == pytest.approx(1.5)

    def test_overlap_none(self):
        tr = Tracer()
        tr.record("a", 0.0, 1.0, "x", kind="compute")
        tr.record("b", 2.0, 3.0, "y", kind="transfer")
        assert tr.overlap("compute", "transfer") == pytest.approx(0.0)

    def test_disabled_tracer_records_nothing(self):
        tr = Tracer(enabled=False)
        tr.record("s0", 0.0, 1.0, "x")
        assert tr.events == []

    def test_gantt_renders_all_lanes(self):
        text = self.make().gantt(width=60)
        for lane in ["s0", "s1", "link"]:
            assert lane in text
        assert "#" in text and "=" in text

    def test_gantt_empty(self):
        assert "empty" in Tracer().gantt()

    def test_filter(self):
        tr = self.make()
        assert len(tr.filter(kind="compute")) == 3
        assert len(tr.filter(lane="link")) == 1
        assert len(tr.filter(kind="compute", lane="s0")) == 2

    def test_clear(self):
        tr = self.make()
        tr.clear()
        assert tr.events == []
