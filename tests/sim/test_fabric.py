"""Tests for offload-over-fabric: remote Xeon domains (paper §III/§IV)."""

import numpy as np
import pytest

from repro import HStreams
from repro.sim.engine import Engine
from repro.sim.kernels import dgemm
from repro.sim.platforms import make_fabric_platform, make_platform, Platform, HSW, KNC_7120A


class TestFabricPlatform:
    def test_construction(self):
        p = make_fabric_platform("HSW", nnodes=2, node="IVB")
        assert p.nfabric == 2 and p.ncards == 0
        assert p.devices[1].name == "IVB"
        assert "fabric" in p.describe()

    def test_validation(self):
        with pytest.raises(ValueError):
            make_fabric_platform("HSW", nnodes=0)
        with pytest.raises(ValueError):
            make_fabric_platform("KNC")

    def test_links_use_fabric_parameters(self):
        p = make_fabric_platform("HSW", nnodes=1, fabric_bandwidth_gbs=4.0,
                                 fabric_latency_s=5e-6)
        links = p.make_links(Engine())
        assert links[1].h2d.bandwidth_gbs == pytest.approx(4.0)
        assert links[1].h2d.latency_s == pytest.approx(5e-6)

    def test_mixed_cards_and_fabric(self):
        p = Platform(
            name="mixed", host=HSW, cards=(KNC_7120A,), fabric_nodes=(HSW,),
        )
        links = p.make_links(Engine())
        assert links[1].h2d.bandwidth_gbs == pytest.approx(6.8)   # PCIe
        assert links[2].h2d.bandwidth_gbs == pytest.approx(5.5)   # fabric
        assert p.device(1).kind == "knc" and p.device(2).kind == "xeon"


class TestFabricExecution:
    def test_uniform_api_reaches_remote_node(self):
        """The §IV uniformity claim: the same enqueue works on a remote
        node as on a card — only the link parameters differ."""
        hs = HStreams(platform=make_fabric_platform("HSW", nnodes=1),
                      backend="sim", trace=False)
        hs.register_kernel("gemm", cost_fn=lambda m, n, k, *a: dgemm(m, n, k))
        s = hs.stream_create(domain=1, ncores=28)
        b = hs.buffer_create(nbytes=8 * 2048 * 2048, domains=[1])
        t0 = hs.elapsed()
        hs.enqueue_xfer(s, b)
        hs.enqueue_compute(s, "gemm", args=(2048, 2048, 2048, b.all_inout()))
        hs.thread_synchronize()
        assert hs.elapsed() > t0

    def test_remote_node_computes_at_its_own_rate(self):
        """A remote HSW node runs DGEMM at HSW rates, not KNC rates."""
        def run(platform, domain_cores):
            hs = HStreams(platform=platform, backend="sim", trace=False)
            hs.register_kernel("gemm", cost_fn=lambda m, n, k, *a: dgemm(m, n, k))
            s = hs.stream_create(domain=1, ncores=domain_cores)
            b = hs.buffer_create(nbytes=8, domains=[1])
            t0 = hs.elapsed()
            hs.enqueue_compute(s, "gemm", args=(4000, 4000, 4000, b.all_inout()))
            hs.thread_synchronize()
            return hs.elapsed() - t0

        t_remote_hsw = run(make_fabric_platform("HSW", 1, node="HSW"), 28)
        t_knc = run(make_platform("HSW", 1), 61)
        rate_hsw = 2 * 4000**3 / t_remote_hsw / 1e9
        assert 800 < rate_hsw < 910  # the HSW DGEMM curve

    def test_fabric_transfer_slower_than_pcie(self):
        def xfer_time(platform):
            hs = HStreams(platform=platform, backend="sim", trace=False)
            s = hs.stream_create(domain=1, ncores=4)
            b = hs.buffer_create(nbytes=64 << 20, domains=[1])
            t0 = hs.elapsed()
            hs.enqueue_xfer(s, b)
            hs.thread_synchronize()
            return hs.elapsed() - t0

        assert xfer_time(make_fabric_platform("HSW", 1)) > xfer_time(
            make_platform("HSW", 1)
        )

    def test_thread_backend_on_fabric_platform(self):
        """Functionally, a remote node is just another address space."""
        hs = HStreams(platform=make_fabric_platform("HSW", nnodes=1),
                      backend="thread", trace=False)
        hs.register_kernel("dbl", fn=lambda x: np.multiply(x, 2.0, out=x))
        s = hs.stream_create(domain=1, ncores=8)
        data = np.arange(4.0)
        buf = hs.wrap(data)
        hs.enqueue_xfer(s, buf)
        hs.enqueue_compute(s, "dbl", args=(buf.tensor((4,)),))
        from repro import XferDirection
        hs.enqueue_xfer(s, buf, XferDirection.SINK_TO_SRC)
        hs.thread_synchronize()
        np.testing.assert_array_equal(data, 2 * np.arange(4.0))
        hs.fini()

    def test_hetero_matmul_spans_fabric_nodes(self):
        """The whole tiled matmul runs unchanged across a mini-cluster."""
        from repro.linalg import hetero_matmul

        hs = HStreams(platform=make_fabric_platform("HSW", nnodes=2),
                      backend="sim", trace=False)
        res = hetero_matmul(hs, 8000, tile=1000, streams_per_domain=2)
        # Three HSW-class domains: comfortably above one HSW alone.
        assert res.gflops > 1.5 * 902
