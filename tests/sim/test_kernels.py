"""Tests for the analytic kernel cost models."""

import pytest
from hypothesis import given, strategies as st

from repro.sim import kernels
from repro.sim.platforms import HSW, KNC_7120A


class TestFlopCounts:
    def test_dgemm(self):
        assert kernels.dgemm(10, 20, 30).flops == pytest.approx(2 * 10 * 20 * 30)

    def test_dsyrk(self):
        assert kernels.dsyrk(10, 5).flops == pytest.approx(10 * 11 * 5)

    def test_dtrsm(self):
        assert kernels.dtrsm(8, 4).flops == pytest.approx(8 * 16)

    def test_dpotrf(self):
        assert kernels.dpotrf(30).flops == pytest.approx(30**3 / 3)

    def test_dgetrf_square(self):
        n = 100
        assert kernels.dgetrf(n, n).flops == pytest.approx(2 * n**3 / 3)

    def test_cholesky_native_matches_dpotrf(self):
        assert kernels.cholesky_native(500).flops == pytest.approx(
            kernels.dpotrf(500).flops
        )

    def test_stencil_flops(self):
        # The paper's halo workload: 1K x 1K x 8 points at 80 flops each.
        cost = kernels.stencil(1024 * 1024 * 8)
        assert cost.flops == pytest.approx(1024 * 1024 * 8 * 80)

    def test_ldlt_panel(self):
        assert kernels.ldlt_panel(100, 10).flops == pytest.approx(100 * 100)

    def test_ldlt_update_is_gemm_shaped(self):
        assert kernels.ldlt_update(10, 20, 30).flops == pytest.approx(
            kernels.dgemm(10, 20, 30).flops
        )

    def test_negative_dims_rejected(self):
        with pytest.raises(ValueError):
            kernels.dgemm(-1, 2, 3)
        with pytest.raises(ValueError):
            kernels.stencil(-5)


class TestKernelCost:
    def test_scaled(self):
        c = kernels.dgemm(10, 10, 10).scaled(0.5)
        assert c.flops == pytest.approx(10 * 10 * 10)
        assert c.kernel == "dgemm"

    def test_negative_flops_rejected(self):
        with pytest.raises(ValueError):
            kernels.KernelCost("x", -1.0, 10.0)

    def test_size_is_min_dimension_for_gemm(self):
        assert kernels.dgemm(100, 2000, 50).size == pytest.approx(50)


class TestTimeOn:
    def test_time_positive(self):
        t = kernels.time_on(HSW, kernels.dgemm(1000, 1000, 1000))
        assert t > 0

    def test_bigger_problems_take_longer(self):
        t1 = kernels.time_on(HSW, kernels.dgemm(500, 500, 500))
        t2 = kernels.time_on(HSW, kernels.dgemm(1000, 1000, 1000))
        assert t2 > t1

    def test_large_dgemm_rate_matches_calibration(self):
        n = 8000
        cost = kernels.dgemm(n, n, n)
        t = kernels.time_on(KNC_7120A, cost)
        achieved = cost.flops / t / 1e9
        # At n=8000 the curve should be near (but below) the 982 asymptote.
        assert 880 < achieved < 982

    def test_partial_cores(self):
        cost = kernels.dgemm(2000, 2000, 2000)
        t_full = kernels.time_on(HSW, cost)
        t_half = kernels.time_on(HSW, cost, cores=14)
        assert t_half > 1.8 * (t_full - HSW.fork_join_s)

    @given(
        m=st.integers(1, 3000), n=st.integers(1, 3000), k=st.integers(1, 3000)
    )
    def test_property_gemm_time_scales_with_work(self, m, n, k):
        small = kernels.time_on(HSW, kernels.dgemm(m, n, k))
        big = kernels.time_on(HSW, kernels.dgemm(2 * m, n, k))
        assert big >= small - 1e-12
