"""Tests for the tile BLAS kernel bodies and cost models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.linalg import host_blas as hb


def rng():
    return np.random.default_rng(42)


class TestKernelBodies:
    def test_dgemm_accumulates(self):
        r = rng()
        A, B = r.random((4, 3)), r.random((3, 5))
        C = r.random((4, 5))
        expect = C + A @ B
        hb.k_dgemm(C, A, B)
        np.testing.assert_allclose(C, expect)

    def test_dgemm_alpha_transb(self):
        r = rng()
        A, B = r.random((4, 3)), r.random((5, 3))
        C = np.zeros((4, 5))
        hb.k_dgemm(C, A, B, alpha=-2.0, transb=True)
        np.testing.assert_allclose(C, -2.0 * A @ B.T)

    def test_dsyrk(self):
        r = rng()
        A = r.random((4, 3))
        C = np.eye(4) * 10
        expect = C - A @ A.T
        hb.k_dsyrk(C, A)
        np.testing.assert_allclose(C, expect)

    def test_dpotrf(self):
        r = rng()
        M = r.random((5, 5))
        spd = M @ M.T + 5 * np.eye(5)
        A = spd.copy()
        hb.k_dpotrf(A)
        np.testing.assert_allclose(A @ A.T, spd)

    def test_dtrsm_right_solve(self):
        r = rng()
        L = np.tril(r.random((4, 4))) + 4 * np.eye(4)
        B = r.random((6, 4))
        X = B.copy()
        hb.k_dtrsm(X, L)
        np.testing.assert_allclose(X @ L.T, B)

    def test_dgetrf_reconstructs(self):
        r = rng()
        A0 = r.random((6, 6)) + 6 * np.eye(6)
        A = A0.copy()
        hb.k_dgetrf(A)
        L = np.tril(A, -1) + np.eye(6)
        U = np.triu(A)
        np.testing.assert_allclose(L @ U, A0)

    def test_dgetrf_zero_pivot(self):
        A = np.zeros((3, 3))
        with pytest.raises(ZeroDivisionError):
            hb.k_dgetrf(A)

    def test_dlaswp_trsm_left(self):
        r = rng()
        A0 = r.random((4, 4)) + 4 * np.eye(4)
        LU = A0.copy()
        hb.k_dgetrf(LU)
        L = np.tril(LU, -1) + np.eye(4)
        B0 = r.random((4, 3))
        B = B0.copy()
        hb.k_dlaswp_trsm(B, LU, side="left")
        np.testing.assert_allclose(L @ B, B0)

    def test_dlaswp_trsm_right(self):
        r = rng()
        A0 = r.random((4, 4)) + 4 * np.eye(4)
        LU = A0.copy()
        hb.k_dgetrf(LU)
        U = np.triu(LU)
        B0 = r.random((3, 4))
        B = B0.copy()
        hb.k_dlaswp_trsm(B, LU, side="right")
        np.testing.assert_allclose(B @ U, B0)

    def test_dlaswp_trsm_bad_side(self):
        with pytest.raises(ValueError):
            hb.k_dlaswp_trsm(np.zeros((2, 2)), np.eye(2), side="up")

    @settings(max_examples=25)
    @given(n=st.integers(2, 12))
    def test_property_cholesky_roundtrip(self, n):
        r = np.random.default_rng(n)
        M = r.random((n, n))
        spd = M @ M.T + n * np.eye(n)
        A = spd.copy()
        hb.k_dpotrf(A)
        np.testing.assert_allclose(A @ A.T, spd, rtol=1e-9, atol=1e-9)


class TestCostModels:
    def test_costs_use_operand_shapes(self):
        from repro.core.buffer import Buffer, ProxyAddressSpace

        space = ProxyAddressSpace()
        b = Buffer(space, nbytes=8 * 64 * 64)
        c = hb.cost_dgemm(
            b.tensor((16, 32)), b.tensor((16, 8)), b.tensor((8, 32))
        )
        assert c.flops == pytest.approx(2 * 16 * 32 * 8)

    def test_cost_dpotrf(self):
        from repro.core.buffer import Buffer, ProxyAddressSpace

        b = Buffer(ProxyAddressSpace(), nbytes=8 * 100 * 100)
        assert hb.cost_dpotrf(b.tensor((100, 100))).flops == pytest.approx(100**3 / 3)

    def test_shapeless_arg_rejected(self):
        with pytest.raises(ValueError):
            hb._shape(42)

    def test_register_blas_registers_all(self):
        from repro import HStreams

        hs = HStreams(backend="thread", trace=False)
        hb.register_blas(hs)
        for name in ["dgemm", "dsyrk", "dpotrf", "dtrsm", "dgetrf", "dlaswp_trsm"]:
            spec = hs.kernel(name)
            assert spec.fn is not None and spec.cost_fn is not None
        hs.fini()
