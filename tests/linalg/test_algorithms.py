"""Integration tests for the hetero linear-algebra algorithms.

Thread-backend tests verify *numerics* (the distributed schedule computes
the right answer through real transfers); sim-backend tests verify
*performance shape* (who wins, scaling, load-balance effects — the
claims of the paper's Figs. 6 and 7).
"""

import numpy as np
import pytest

from repro import HStreams, make_platform
from repro.linalg import (
    hetero_cholesky,
    hetero_lu,
    hetero_matmul,
    magma_cholesky,
    mkl_ao_cholesky,
)
from repro.linalg.matmul import assign_columns


def thread_hs(ncards=2):
    return HStreams(platform=make_platform("HSW", ncards), backend="thread", trace=False)


def sim_hs(host="HSW", ncards=1):
    return HStreams(platform=make_platform(host, ncards), backend="sim", trace=False)


class TestAssignColumns:
    def test_equal_weights(self):
        owners = assign_columns(6, [0, 1, 2], [1, 1, 1])
        assert owners == [0, 0, 1, 1, 2, 2]

    def test_proportional(self):
        owners = assign_columns(8, [0, 1], [1, 3])
        assert owners.count(0) == 2 and owners.count(1) == 6

    def test_rounding_preserves_total(self):
        owners = assign_columns(7, [0, 1, 2], [1, 1, 1])
        assert len(owners) == 7

    def test_zero_weight_domain_gets_nothing(self):
        owners = assign_columns(4, [0, 1], [0, 1])
        assert owners.count(0) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            assign_columns(4, [0], [1, 2])
        with pytest.raises(ValueError):
            assign_columns(4, [0], [0.0])


class TestMatmulNumerics:
    @pytest.mark.parametrize("n,tile", [(64, 16), (100, 30), (60, 60)])
    def test_correct_product(self, n, tile):
        hs = thread_hs()
        rng = np.random.default_rng(1)
        A, B = rng.random((n, n)), rng.random((n, n))
        res = hetero_matmul(hs, n, tile=tile, data=(A, B), streams_per_domain=2)
        np.testing.assert_allclose(res.C, A @ B, rtol=1e-10, atol=1e-10)
        hs.fini()

    def test_no_load_balance_still_correct(self):
        hs = thread_hs()
        rng = np.random.default_rng(2)
        n = 64
        A, B = rng.random((n, n)), rng.random((n, n))
        res = hetero_matmul(
            hs, n, tile=16, data=(A, B), load_balance=False, streams_per_domain=2
        )
        np.testing.assert_allclose(res.C, A @ B, rtol=1e-10)
        hs.fini()

    def test_host_only_platform(self):
        hs = thread_hs(ncards=0)
        rng = np.random.default_rng(3)
        n = 48
        A, B = rng.random((n, n)), rng.random((n, n))
        res = hetero_matmul(hs, n, tile=16, data=(A, B), streams_per_domain=2)
        np.testing.assert_allclose(res.C, A @ B, rtol=1e-10)
        hs.fini()

    def test_invalid_n(self):
        hs = thread_hs()
        with pytest.raises(ValueError):
            hetero_matmul(hs, 0)
        hs.fini()


class TestCholeskyNumerics:
    @pytest.mark.parametrize("n,tile", [(64, 16), (90, 30)])
    def test_factor_reconstructs(self, n, tile):
        hs = thread_hs()
        rng = np.random.default_rng(4)
        M = rng.random((n, n))
        spd = M @ M.T + n * np.eye(n)
        res = hetero_cholesky(hs, n, tile=tile, data=spd.copy(), streams_per_domain=2)
        np.testing.assert_allclose(res.L @ res.L.T, spd, rtol=1e-9, atol=1e-8)
        hs.fini()

    def test_offload_only_mode(self):
        hs = thread_hs(ncards=1)
        rng = np.random.default_rng(5)
        n = 64
        M = rng.random((n, n))
        spd = M @ M.T + n * np.eye(n)
        res = hetero_cholesky(
            hs, n, tile=16, data=spd.copy(), use_host=False, streams_per_domain=2
        )
        np.testing.assert_allclose(res.L @ res.L.T, spd, rtol=1e-9, atol=1e-8)
        hs.fini()


class TestLUNumerics:
    def test_factor_reconstructs(self):
        hs = thread_hs()
        rng = np.random.default_rng(6)
        n = 64
        A0 = rng.random((n, n)) + n * np.eye(n)
        res = hetero_lu(hs, n, tile=16, data=A0.copy(), streams_per_domain=2)
        L = np.tril(res.LU, -1) + np.eye(n)
        U = np.triu(res.LU)
        np.testing.assert_allclose(L @ U, A0, rtol=1e-9, atol=1e-8)
        hs.fini()


class TestPerformanceShape:
    """Sim-backend checks of the paper's Fig. 6 / Fig. 7 claims."""

    def test_adding_a_card_speeds_up_matmul(self):
        r1 = hetero_matmul(sim_hs(ncards=1), 12000, tile=1000)
        r2 = hetero_matmul(sim_hs(ncards=2), 12000, tile=1000)
        assert r2.gflops / r1.gflops > 1.25

    def test_two_card_efficiency_at_large_n(self):
        """Fig. 6: >85% scaling efficiency for large n on HSW + 2 KNC."""
        r2 = hetero_matmul(sim_hs(ncards=2), 24000, tile=2000)
        combined_rate = 902.0 + 2 * 982.0
        assert r2.gflops / combined_rate > 0.80

    def test_load_balancing_matters_on_ivb(self):
        """Fig. 6: IVB + 2 KNC, with vs without load balancing (1.58x)."""
        lb = hetero_matmul(sim_hs("IVB", 2), 16000, tile=2000, load_balance=True)
        nb = hetero_matmul(sim_hs("IVB", 2), 16000, tile=2000, load_balance=False)
        assert lb.gflops / nb.gflops > 1.25

    def test_load_balancing_immaterial_on_hsw(self):
        """Fig. 6: HSW's DGEMM rate matches a KNC, so naive is fine."""
        lb = hetero_matmul(sim_hs("HSW", 2), 16000, tile=2000, load_balance=True)
        nb = hetero_matmul(sim_hs("HSW", 2), 16000, tile=2000, load_balance=False)
        assert abs(lb.gflops - nb.gflops) / lb.gflops < 0.10

    def test_hetero_beats_host_native_by_2x(self):
        """Conclusions: '2x gains over just a host'."""
        host = hetero_matmul(sim_hs("HSW", 0), 16000, tile=2000)
        both = hetero_matmul(sim_hs("HSW", 2), 16000, tile=2000)
        assert both.gflops > 2.0 * host.gflops

    def test_cholesky_hstreams_beats_magma_with_host(self):
        """Fig. 7: hStreams outperforms MAGMA by ~10% using host + MIC."""
        n = 20000
        h = hetero_cholesky(sim_hs(ncards=1), n, tile=n // 20, host_streams=4)
        m = magma_cholesky(sim_hs(ncards=1), n, tile=n // 20)
        assert h.gflops > 1.05 * m.gflops

    def test_cholesky_hstreams_beats_mkl_ao(self):
        """Fig. 7: hStreams above MKL AO on 2 cards."""
        n = 20000
        h = hetero_cholesky(sim_hs(ncards=2), n, tile=n // 20, host_streams=4)
        ao = mkl_ao_cholesky(sim_hs(ncards=2), n, tile=n // 20)
        assert h.gflops > ao.gflops

    def test_cholesky_uses_the_platform_less_well_than_matmul(self):
        """Fig. 6/7: matmul achieves near the combined device rate on 2
        cards (perfect balance, simple communication); Cholesky's panel
        chain and triangular shape leave a large fraction unused."""
        n = 24000
        combined = 902.0 + 2 * 982.0
        c2 = hetero_cholesky(sim_hs(ncards=2), n, tile=n // 20, host_streams=4)
        m2 = hetero_matmul(sim_hs(ncards=2), n, tile=2000)
        assert m2.gflops / combined > 0.80
        assert c2.gflops / combined < 0.75
        assert m2.gflops / combined > c2.gflops / combined + 0.1

    def test_transfers_overlap_compute(self):
        hs = HStreams(platform=make_platform("HSW", 1), backend="sim")
        hetero_matmul(hs, 8000, tile=1000)
        assert hs.tracer.overlap("compute", "transfer") > 0
