"""Unit tests for the FlowContext cross-stream dependence helper."""

import pytest

from repro import HStreams, make_platform
from repro.linalg.dataflow import FlowContext
from repro.sim.kernels import KernelCost


def cost(seconds: float) -> KernelCost:
    return KernelCost("default", flops=seconds * 0.45 * 1298.1e9, size=1e9)


@pytest.fixture()
def ctx():
    hs = HStreams(platform=make_platform("HSW", 2), backend="sim", trace=False)
    hs.register_kernel("k", fn=lambda *a: None, cost_fn=None)
    return hs, FlowContext(hs)


class TestElision:
    """send/retrieve always enqueue; the runtime elides redundant ones."""

    def test_redundant_send_is_elided(self, ctx):
        hs, flow = ctx
        s = hs.stream_create(domain=1, ncores=8)
        buf = hs.buffer_create(nbytes=1 << 20)
        first = flow.send(s, buf)
        assert not first.action.elided  # first send really transfers
        second = flow.send(s, buf)
        assert second.action.elided  # sink copy already current
        assert hs.metrics()["memory"]["elided_transfers"] == 1

    def test_send_to_host_stream_is_aliased(self, ctx):
        hs, flow = ctx
        s = hs.stream_create(domain=0, ncores=4)
        buf = hs.buffer_create(nbytes=1 << 20)
        ev = flow.send(s, buf)
        assert ev is not None  # still an ordering point
        assert hs.metrics()["memory"]["aliased_transfers"] == 1

    def test_write_invalidates_other_domains(self, ctx):
        hs, flow = ctx
        s1 = hs.stream_create(domain=1, ncores=8)
        buf = hs.buffer_create(nbytes=1 << 20)
        flow.send(s1, buf)
        flow.compute(s1, "k", args=(buf.all_inout(),), writes=(buf,),
                     cost=cost(0.01))
        # The card write made the host copy stale: the retrieve must
        # really move bytes, and a re-send after it must too (host never
        # rewrote the sink... but the sink stayed current, so re-send of
        # the unmodified tile IS elidable).
        assert not flow.retrieve(s1, buf).action.elided

    def test_retrieve_after_card_write(self, ctx):
        hs, flow = ctx
        s1 = hs.stream_create(domain=1, ncores=8)
        buf = hs.buffer_create(nbytes=1 << 20)
        flow.send(s1, buf)
        flow.compute(s1, "k", args=(buf.all_inout(),), writes=(buf,),
                     cost=cost(0.01))
        assert not flow.retrieve(s1, buf).action.elided
        assert flow.retrieve(s1, buf).action.elided  # now cached at home


class TestCrossStreamSyncs:
    def test_same_stream_needs_no_sync(self, ctx):
        hs, flow = ctx
        s = hs.stream_create(domain=1, ncores=8)
        buf = hs.buffer_create(nbytes=64)
        flow.compute(s, "k", args=(buf.all_inout(),), writes=(buf,), cost=cost(0.01))
        flow.compute(s, "k", args=(buf.all_inout(),), reads=(buf,), cost=cost(0.01))
        assert flow.sync_count == 0

    def test_cross_stream_inserts_one_scoped_sync(self, ctx):
        hs, flow = ctx
        s1 = hs.stream_create(domain=1, ncores=8)
        s2 = hs.stream_create(domain=1, ncores=8)
        buf = hs.buffer_create(nbytes=64)
        flow.compute(s1, "k", args=(buf.all_inout(),), writes=(buf,), cost=cost(0.05))
        flow.compute(s2, "k", args=(buf.all_inout(),), reads=(buf,), cost=cost(0.01))
        assert flow.sync_count == 1

    def test_sync_is_deduplicated_per_consumer_stream(self, ctx):
        hs, flow = ctx
        s1 = hs.stream_create(domain=1, ncores=8)
        s2 = hs.stream_create(domain=1, ncores=8)
        buf = hs.buffer_create(nbytes=64)
        flow.compute(s1, "k", args=(buf.all_inout(),), writes=(buf,), cost=cost(0.05))
        flow.compute(s2, "k", args=(buf.all_inout(),), reads=(buf,), cost=cost(0.01))
        flow.compute(s2, "k", args=(buf.all_inout(),), reads=(buf,), cost=cost(0.01))
        assert flow.sync_count == 1  # the second consumer reuses the sync

    def test_ordering_is_actually_enforced(self, ctx):
        hs, flow = ctx
        s1 = hs.stream_create(domain=1, ncores=30)
        s2 = hs.stream_create(domain=1, ncores=30)
        buf = hs.buffer_create(nbytes=64)
        producer = flow.compute(s1, "k", args=(buf.all_inout(),), writes=(buf,),
                                cost=cost(0.2))
        consumer = flow.compute(s2, "k", args=(buf.all_inout(),), reads=(buf,),
                                cost=cost(0.01))
        hs.thread_synchronize()
        assert consumer.timestamp >= producer.timestamp

    def test_completed_producer_needs_no_sync(self, ctx):
        hs, flow = ctx
        s1 = hs.stream_create(domain=1, ncores=8)
        s2 = hs.stream_create(domain=1, ncores=8)
        buf = hs.buffer_create(nbytes=64)
        flow.compute(s1, "k", args=(buf.all_inout(),), writes=(buf,), cost=cost(0.01))
        hs.thread_synchronize()  # producer done
        flow.compute(s2, "k", args=(buf.all_inout(),), reads=(buf,), cost=cost(0.01))
        assert flow.sync_count == 0

    def test_multiple_producers_one_sync_action(self, ctx):
        hs, flow = ctx
        s1 = hs.stream_create(domain=1, ncores=8)
        s2 = hs.stream_create(domain=1, ncores=8)
        s3 = hs.stream_create(domain=1, ncores=8)
        b1 = hs.buffer_create(nbytes=64)
        b2 = hs.buffer_create(nbytes=64)
        flow.compute(s1, "k", args=(b1.all_inout(),), writes=(b1,), cost=cost(0.05))
        flow.compute(s2, "k", args=(b2.all_inout(),), writes=(b2,), cost=cost(0.05))
        flow.compute(s3, "k", args=(b1.all_inout(), b2.all_inout()),
                     reads=(b1, b2), cost=cost(0.01))
        assert flow.sync_count == 1  # both producers batched into one wait
