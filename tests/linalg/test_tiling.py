"""Tests for tile decomposition utilities."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.linalg.tiling import TileGrid, join_tiles, split_tiles


class TestTileGrid:
    def test_even_division(self):
        g = TileGrid(100, 25)
        assert g.ntiles == 4
        assert g.tile_rows(3) == 25

    def test_ragged_edge(self):
        g = TileGrid(100, 30)
        assert g.ntiles == 4
        assert g.tile_rows(3) == 10

    def test_span(self):
        g = TileGrid(100, 30)
        assert g.span(0) == (0, 30)
        assert g.span(3) == (90, 100)

    def test_tile_nbytes(self):
        g = TileGrid(100, 30)
        assert g.tile_nbytes(0, 0) == 30 * 30 * 8
        assert g.tile_nbytes(3, 3) == 10 * 10 * 8

    def test_index_bounds(self):
        g = TileGrid(100, 30)
        with pytest.raises(IndexError):
            g.tile_rows(4)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            TileGrid(0, 5)
        with pytest.raises(ValueError):
            TileGrid(10, 0)
        with pytest.raises(ValueError):
            TileGrid(10, 20)

    def test_iteration_covers_all(self):
        g = TileGrid(60, 20)
        assert len(list(g)) == 9
        assert len(list(g.lower())) == 6

    @given(n=st.integers(1, 500), b=st.integers(1, 500))
    def test_property_tiles_cover_exactly_n(self, n, b):
        if b > n:
            b = n
        g = TileGrid(n, b)
        assert sum(g.tile_rows(i) for i in range(g.ntiles)) == n


class TestSplitJoin:
    def test_roundtrip_even(self):
        m = np.arange(64.0).reshape(8, 8)
        assert (join_tiles(split_tiles(m, 4)) == m).all()

    def test_roundtrip_ragged(self):
        m = np.arange(100.0).reshape(10, 10)
        assert (join_tiles(split_tiles(m, 3)) == m).all()

    def test_tiles_are_contiguous_copies(self):
        m = np.zeros((8, 8))
        tiles = split_tiles(m, 4)
        tiles[0][0][0, 0] = 1.0
        assert m[0, 0] == 0.0
        assert tiles[1][1].flags["C_CONTIGUOUS"]

    def test_join_into_existing(self):
        m = np.arange(36.0).reshape(6, 6)
        out = np.empty((6, 6))
        join_tiles(split_tiles(m, 2), out=out)
        assert (out == m).all()

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            split_tiles(np.zeros((4, 6)), 2)

    def test_empty_join_rejected(self):
        with pytest.raises(ValueError):
            join_tiles([])

    @given(n=st.integers(1, 40), b=st.integers(1, 40))
    def test_property_split_join_identity(self, n, b):
        if b > n:
            b = n
        rng = np.random.default_rng(0)
        m = rng.random((n, n))
        assert np.array_equal(join_tiles(split_tiles(m, b)), m)
