"""End-to-end functional RTM: the *streamed* propagator computes real
physics.

These tests run the actual `run_rtm` pipeline — slab chains, ping-pong
buffers, halo streams, d2h copies, host-side MPI exchange, ghost pushes
— on the thread backend with real wavefields, and compare the final
field against the monolithic numpy reference. This validates the entire
dependence/exchange machinery, not just the stencil math.
"""

import numpy as np
import pytest

from repro import HStreams, make_platform
from repro.apps.rtm import run_rtm
from repro.apps.rtm.stencil import HALF_ORDER, propagate_reference

H = HALF_ORDER
VDT2 = 0.04


def initial_fields(nz, ny, nx, seed=0):
    rng = np.random.default_rng(seed)
    cur = np.zeros((nz + 2 * H, ny + 2 * H, nx + 2 * H))
    prev = np.zeros_like(cur)
    cur[H:-H, H:-H, H:-H] = rng.random((nz, ny, nx))
    prev[H:-H, H:-H, H:-H] = rng.random((nz, ny, nx))
    return cur, prev


def reference(cur, prev, steps):
    return propagate_reference(cur, prev, VDT2, steps)


def streamed(nranks, steps, grid, scheme, exchange="dependence", seed=0):
    cur, prev = initial_fields(*grid, seed=seed)
    hs = HStreams(platform=make_platform("HSW", max(nranks, 1)),
                  backend="thread", trace=False)
    res = run_rtm(hs, grid=grid, nranks=nranks, steps=steps, scheme=scheme,
                  exchange=exchange, periodic=False, field=(cur, prev),
                  vdt2=VDT2)
    hs.fini()
    ref = reference(cur, prev, steps)
    return res.field, ref


GRID = (40, 10, 10)  # >= 2*(2H+1+2H) planes for two ranks' slab chains


class TestStreamedPhysics:
    @pytest.mark.parametrize("steps", [1, 2, 5])
    def test_single_rank_async_matches_reference(self, steps):
        got, ref = streamed(1, steps, GRID, "async")
        np.testing.assert_allclose(got[H:-H], ref[H:-H], rtol=1e-10, atol=1e-12)

    def test_two_ranks_async_matches_reference(self):
        got, ref = streamed(2, 4, (48, 10, 10), "async")
        np.testing.assert_allclose(got[H:-H], ref[H:-H], rtol=1e-10, atol=1e-12)

    def test_two_ranks_sync_matches_reference(self):
        got, ref = streamed(2, 4, (48, 10, 10), "sync")
        np.testing.assert_allclose(got[H:-H], ref[H:-H], rtol=1e-10, atol=1e-12)

    def test_barrier_exchange_matches_reference(self):
        """Both §V schemes are semantically identical; only performance
        differs."""
        got, ref = streamed(2, 3, (48, 10, 10), "async", exchange="barrier")
        np.testing.assert_allclose(got[H:-H], ref[H:-H], rtol=1e-10, atol=1e-12)

    def test_schemes_agree_with_each_other(self):
        a, _ = streamed(2, 4, (48, 10, 10), "async", seed=3)
        s, _ = streamed(2, 4, (48, 10, 10), "sync", seed=3)
        np.testing.assert_allclose(a, s, rtol=1e-12, atol=1e-14)

    def test_odd_step_count_lands_in_the_other_generation(self):
        got, ref = streamed(1, 3, GRID, "async")
        np.testing.assert_allclose(got[H:-H], ref[H:-H], rtol=1e-10, atol=1e-12)

    def test_uneven_rank_split(self):
        """49 planes over 2 ranks: 25 + 24, slab chains of unequal size."""
        got, ref = streamed(2, 3, (49, 8, 8), "async")
        np.testing.assert_allclose(got[H:-H], ref[H:-H], rtol=1e-10, atol=1e-12)

    def test_too_thin_ranks_rejected(self):
        # 20 planes over 2 ranks: 10 each, 6 bulk planes after the halo —
        # too thin to split into edge/middle slabs.
        cur, prev = initial_fields(20, 8, 8)
        hs = HStreams(platform=make_platform("HSW", 2), backend="thread",
                      trace=False)
        with pytest.raises(ValueError, match="bulk planes"):
            run_rtm(hs, grid=(20, 8, 8), nranks=2, steps=1, scheme="async",
                    periodic=False, field=(cur, prev), vdt2=VDT2)
        hs.fini()
