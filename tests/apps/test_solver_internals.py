"""Tests for the sparse solver's internals: batching, memory lifecycle,
assembly costs, and placement policy."""

import pytest

from repro import HStreams, make_platform
from repro.apps.abaqus.solver import _assembly_cost, solve_workload
from repro.apps.abaqus.workloads import Workload


def tiny_workload(**overrides) -> Workload:
    kw = dict(
        name="t", symmetric=True, nfronts=9, ncols_range=(400, 1200),
        aspect=2.0, small_front_fraction=0.34,
        assembly_bytes_per_entry=40.0, solver_fraction=0.7, seed=4,
    )
    kw.update(overrides)
    return Workload(**kw)


class TestAssemblyCost:
    def test_bandwidth_bound(self):
        cost = _assembly_cost(1000, 500, 48.0)
        assert cost.bytes_moved == 1000 * 500 * 48.0
        assert cost.flops < cost.bytes_moved  # traffic dominates

    def test_scales_with_front_size(self):
        small = _assembly_cost(100, 50, 40.0)
        big = _assembly_cost(1000, 500, 40.0)
        assert big.bytes_moved == 100 * small.bytes_moved


class TestBatching:
    def test_buffers_released_between_batches(self):
        """The bounded working set: after the run, no front buffers
        linger (scratch + blocks are all destroyed)."""
        hs = HStreams(platform=make_platform("HSW", 1), backend="sim", trace=False)
        before = len(hs.buffers)
        solve_workload(hs, tiny_workload(), batch=3)
        assert len(hs.buffers) == before

    def test_batch_boundary_at_exact_multiple(self):
        hs = HStreams(platform=make_platform("HSW", 1), backend="sim", trace=False)
        res = solve_workload(hs, tiny_workload(nfronts=6), batch=3)
        assert res.nfronts == 6
        assert len(hs.buffers) == 0

    def test_smaller_batches_cost_some_pipelining(self):
        w = tiny_workload(nfronts=12)
        hs1 = HStreams(platform=make_platform("HSW", 1), backend="sim", trace=False)
        tight = solve_workload(hs1, w, batch=1)
        hs2 = HStreams(platform=make_platform("HSW", 1), backend="sim", trace=False)
        loose = solve_workload(hs2, w, batch=12)
        assert loose.elapsed_s <= tight.elapsed_s * 1.02


class TestPlacement:
    def test_per_domain_flops_follow_rates(self):
        """With two identical cards, neither gets everything."""
        hs = HStreams(platform=make_platform("HSW", 2), backend="sim", trace=False)
        res = solve_workload(hs, tiny_workload(nfronts=12, small_front_fraction=0.0))
        card_flops = [res.per_domain_flops[1], res.per_domain_flops[2]]
        assert min(card_flops) > 0
        assert max(card_flops) < res.flops

    def test_no_cards_means_all_host(self):
        hs = HStreams(platform=make_platform("HSW", 0), backend="sim", trace=False)
        res = solve_workload(hs, tiny_workload(), use_cards=True)
        assert res.offloaded_fronts == 0
        assert res.per_domain_flops[0] == pytest.approx(res.flops)

    def test_unsymmetric_doubles_front_flops(self):
        sym = tiny_workload()
        unsym = tiny_workload(symmetric=False)
        hs1 = HStreams(platform=make_platform("HSW", 1), backend="sim", trace=False)
        r_sym = solve_workload(hs1, sym)
        hs2 = HStreams(platform=make_platform("HSW", 1), backend="sim", trace=False)
        r_unsym = solve_workload(hs2, unsym)
        assert r_unsym.flops == pytest.approx(2 * r_sym.flops)
        assert r_unsym.elapsed_s > r_sym.elapsed_s
