"""Tests for the streamed LDL^T solve phase."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import HStreams, make_platform
from repro.apps.abaqus import ldlt_solve_dense, solve_supernode
from repro.apps.abaqus.supernode import factorize_supernode, ldlt_dense


def spd(n, seed=0):
    rng = np.random.default_rng(seed)
    M = rng.random((n, n))
    return M @ M.T + n * np.eye(n)


def factor_and_solve(n, panel, nstreams, seed=0, domain=1):
    A = spd(n, seed)
    rng = np.random.default_rng(seed + 1)
    b = rng.random(n)
    hs = HStreams(platform=make_platform("HSW", 1), backend="thread", trace=False)
    fac = factorize_supernode(hs, n, n, panel=panel, domain=domain,
                              nstreams=nstreams, data=A.copy())
    res = solve_supernode(hs, fac, b=b, domain=domain, nstreams=nstreams)
    hs.fini()
    return A, b, res.x


class TestDenseReference:
    def test_matches_numpy(self):
        A = spd(20)
        b = np.arange(20.0)
        L, d = ldlt_dense(A)
        np.testing.assert_allclose(
            ldlt_solve_dense(L, d, b), np.linalg.solve(A, b), rtol=1e-9
        )


class TestStreamedSolve:
    @pytest.mark.parametrize("n,panel,nstreams", [
        (48, 16, 1), (48, 16, 3), (96, 24, 3), (96, 40, 2),
    ])
    def test_matches_numpy(self, n, panel, nstreams):
        A, b, x = factor_and_solve(n, panel, nstreams)
        np.testing.assert_allclose(x, np.linalg.solve(A, b),
                                   rtol=1e-8, atol=1e-10)

    def test_host_as_target(self):
        A, b, x = factor_and_solve(60, 20, 2, domain=0)
        np.testing.assert_allclose(x, np.linalg.solve(A, b),
                                   rtol=1e-8, atol=1e-10)

    def test_rhs_is_not_modified(self):
        n = 48
        A = spd(n)
        b = np.arange(float(n))
        hs = HStreams(platform=make_platform("HSW", 1), backend="thread",
                      trace=False)
        fac = factorize_supernode(hs, n, n, panel=16, domain=1, data=A.copy())
        solve_supernode(hs, fac, b=b, domain=1)
        hs.fini()
        np.testing.assert_array_equal(b, np.arange(float(n)))

    def test_trapezoidal_factor_rejected(self):
        hs = HStreams(platform=make_platform("HSW", 1), backend="sim",
                      trace=False)
        fac = factorize_supernode(hs, 2000, 1000, panel=500, domain=1)
        with pytest.raises(ValueError):
            solve_supernode(hs, fac)

    def test_bad_rhs_shape(self):
        n = 32
        hs = HStreams(platform=make_platform("HSW", 1), backend="thread",
                      trace=False)
        fac = factorize_supernode(hs, n, n, panel=16, domain=1,
                                  data=spd(n).copy())
        with pytest.raises(ValueError):
            solve_supernode(hs, fac, b=np.zeros(n + 1), domain=1)
        hs.fini()

    def test_sim_backend_times_the_solve(self):
        hs = HStreams(platform=make_platform("HSW", 1), backend="sim",
                      trace=False)
        fac = factorize_supernode(hs, 8000, 8000, panel=1000, domain=1)
        res = solve_supernode(hs, fac, domain=1)
        assert res.elapsed_s > 0 and res.x is None

    @settings(max_examples=10, deadline=None)
    @given(n=st.integers(8, 64), panel=st.integers(4, 32), seed=st.integers(0, 99))
    def test_property_streamed_solve_is_exact(self, n, panel, seed):
        A, b, x = factor_and_solve(n, min(panel, n), 2, seed=seed)
        np.testing.assert_allclose(x, np.linalg.solve(A, b),
                                   rtol=1e-7, atol=1e-8)
