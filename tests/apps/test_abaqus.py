"""Tests for the Abaqus-like supernode solver."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import HStreams, make_platform
from repro.apps.abaqus import WORKLOADS, Workload, solve_workload
from repro.apps.abaqus.supernode import (
    factorize_supernode,
    k_ldlt_panel,
    k_ldlt_update,
    ldlt_dense,
    supernode_flops,
)


def spd(n, seed=0):
    rng = np.random.default_rng(seed)
    M = rng.random((n, n))
    return M @ M.T + n * np.eye(n)


class TestLDLTKernels:
    def test_reference_roundtrip(self):
        A = spd(12)
        L, d = ldlt_dense(A)
        np.testing.assert_allclose(L @ np.diag(d) @ L.T, A, rtol=1e-9)
        np.testing.assert_allclose(np.diag(L), 1.0)

    def test_panel_kernel_matches_reference(self):
        A = spd(8)
        block = A.copy()
        d = np.zeros(8)
        k_ldlt_panel(block, d)
        L_ref, d_ref = ldlt_dense(A)
        np.testing.assert_allclose(d, d_ref, rtol=1e-9)
        np.testing.assert_allclose(np.tril(block, -1), np.tril(L_ref, -1), rtol=1e-9)

    def test_panel_zero_pivot(self):
        with pytest.raises(ZeroDivisionError):
            k_ldlt_panel(np.zeros((3, 3)), np.zeros(3))

    def test_update_kernel_is_gemm_shaped(self):
        rng = np.random.default_rng(1)
        Bq = rng.random((5, 3))
        Lp_low = rng.random((5, 2))
        Lp_mid = rng.random((3, 2))
        d = rng.random(2)
        expect = Bq - Lp_low @ (Lp_mid * d).T
        k_ldlt_update(Bq, Lp_low, Lp_mid, d)
        np.testing.assert_allclose(Bq, expect)

    @settings(max_examples=20)
    @given(n=st.integers(2, 16))
    def test_property_ldlt_reconstructs(self, n):
        A = spd(n, seed=n)
        L, d = ldlt_dense(A)
        np.testing.assert_allclose(L @ np.diag(d) @ L.T, A, rtol=1e-8, atol=1e-8)


class TestStreamedSupernode:
    def test_numerics_on_thread_backend(self):
        hs = HStreams(platform=make_platform("HSW", 1), backend="thread", trace=False)
        A = spd(60, seed=2)
        res = factorize_supernode(hs, 60, 60, panel=16, domain=1, nstreams=2, data=A.copy())
        np.testing.assert_allclose(
            res.L @ np.diag(res.d) @ res.L.T, A, rtol=1e-8, atol=1e-8
        )
        hs.fini()

    def test_host_as_target_numerics(self):
        hs = HStreams(platform=make_platform("HSW", 0), backend="thread", trace=False)
        A = spd(48, seed=3)
        res = factorize_supernode(hs, 48, 48, panel=16, domain=0, nstreams=2, data=A.copy())
        np.testing.assert_allclose(
            res.L @ np.diag(res.d) @ res.L.T, A, rtol=1e-8, atol=1e-8
        )
        hs.fini()

    def test_invalid_shapes(self):
        hs = HStreams(backend="thread", trace=False)
        with pytest.raises(ValueError):
            factorize_supernode(hs, 10, 20)
        with pytest.raises(ValueError):
            factorize_supernode(hs, 20, 10, data=np.eye(10))
        hs.fini()

    def test_flops_formula(self):
        # Square supernode = full LDL^T: n^2 (n - n/3) = 2n^3/3.
        assert supernode_flops(30, 30) == pytest.approx(2 * 30**3 / 3)

    def test_unsymmetric_doubles_virtual_time(self):
        def run(scale):
            hs = HStreams(platform=make_platform("HSW", 1), backend="sim", trace=False)
            return factorize_supernode(
                hs, 4000, 1000, panel=250, domain=1, flop_scale=scale
            ).elapsed_s

        assert run(2.0) > 1.6 * run(1.0)

    def test_fig9_runtime_ordering(self):
        """Fig. 9: KNC ~ HSW (near parity), IVB ~ 1.9x slower than HSW."""
        times = {}
        for key, host, dom, nstr in [
            ("knc", "HSW", 1, 4),
            ("hsw", "HSW", 0, 3),
            ("ivb", "IVB", 0, 3),
        ]:
            hs = HStreams(platform=make_platform(host, 1), backend="sim", trace=False)
            total = hs.domain(dom).device.total_cores
            wide = hs.stream_create(domain=dom, cpu_mask=range(total))
            times[key] = factorize_supernode(
                hs, 16384, 4096, panel=1024, domain=dom, nstreams=nstr,
                panel_stream=wide,
            ).elapsed_s
        assert times["ivb"] > 1.5 * times["hsw"]  # ~1.9x in the paper
        assert times["knc"] < 1.5 * times["hsw"]  # near parity, not 2x+


class TestWorkloads:
    def test_suite_has_eight(self):
        assert len(WORKLOADS) == 8
        assert {"s4b", "s8", "s9", "e5", "A", "B", "C", "x1"} == set(WORKLOADS)

    def test_symmetric_and_unsymmetric_present(self):
        kinds = {w.symmetric for w in WORKLOADS.values()}
        assert kinds == {True, False}

    def test_supernode_lists_are_deterministic(self):
        w = WORKLOADS["s4b"]
        assert w.supernodes() == w.supernodes()

    def test_supernodes_sorted_ascending(self):
        ncols = [c for _, c in WORKLOADS["s8"].supernodes()]
        assert ncols == sorted(ncols)

    def test_unsymmetric_flops_doubled(self):
        w = WORKLOADS["A"]
        sym_equiv = Workload(
            name="A-sym", symmetric=True, nfronts=w.nfronts,
            ncols_range=w.ncols_range, aspect=w.aspect,
            small_front_fraction=w.small_front_fraction,
            assembly_bytes_per_entry=w.assembly_bytes_per_entry,
            solver_fraction=w.solver_fraction, seed=w.seed,
        )
        assert w.total_flops() == pytest.approx(2 * sym_equiv.total_flops())

    def test_validation(self):
        with pytest.raises(ValueError):
            Workload("bad", True, 4, (0, 10), 2.0, 0.1, 10.0, 0.5)
        with pytest.raises(ValueError):
            Workload("bad", True, 4, (10, 100), 0.5, 0.1, 10.0, 0.5)
        with pytest.raises(ValueError):
            Workload("bad", True, 4, (10, 100), 2.0, 0.1, 10.0, 1.5)


class TestSolver:
    def _small(self):
        """A scaled-down workload so tests stay fast."""
        return Workload(
            name="tiny", symmetric=True, nfronts=16, ncols_range=(600, 1800),
            aspect=2.0, small_front_fraction=0.3,
            assembly_bytes_per_entry=40.0, solver_fraction=0.7, seed=5,
        )

    def test_offload_speeds_up_the_solver(self):
        w = self._small()
        hs0 = HStreams(platform=make_platform("IVB", 2), backend="sim", trace=False)
        base = solve_workload(hs0, w, use_cards=False)
        hs1 = HStreams(platform=make_platform("IVB", 2), backend="sim", trace=False)
        het = solve_workload(hs1, w, use_cards=True)
        assert het.elapsed_s < base.elapsed_s
        assert het.offloaded_fronts > 0
        assert base.offloaded_fronts == 0

    def test_small_fronts_stay_on_host(self):
        w = self._small()
        hs = HStreams(platform=make_platform("HSW", 2), backend="sim", trace=False)
        res = solve_workload(hs, w, use_cards=True)
        assert res.host_fronts >= 3  # the 30% small-front share

    def test_ivb_gains_more_than_hsw(self):
        """Fig. 8: the weaker host sees the bigger speedup."""
        w = self._small()
        sp = {}
        for host in ("IVB", "HSW"):
            hs0 = HStreams(platform=make_platform(host, 2), backend="sim", trace=False)
            base = solve_workload(hs0, w, use_cards=False)
            hs1 = HStreams(platform=make_platform(host, 2), backend="sim", trace=False)
            het = solve_workload(hs1, w, use_cards=True)
            sp[host] = base.elapsed_s / het.elapsed_s
        assert sp["IVB"] > sp["HSW"] > 1.0

    def test_work_distribution_reported(self):
        w = self._small()
        hs = HStreams(platform=make_platform("HSW", 2), backend="sim", trace=False)
        res = solve_workload(hs, w, use_cards=True)
        assert res.flops == pytest.approx(sum(res.per_domain_flops.values()))
        assert res.nfronts == 16
