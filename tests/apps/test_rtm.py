"""Tests for the RTM application: stencil numerics, decomposition
correctness, the offload schemes' performance shape, and the HLIB API."""

import numpy as np
import pytest

from repro import HStreams, make_platform
from repro.apps.rtm import HLIB, decompose, run_rtm
from repro.apps.rtm.halo import Subdomain
from repro.apps.rtm.stencil import (
    HALF_ORDER,
    laplacian_8th,
    propagate_reference,
    propagate_slab,
    stencil_cost,
)


def padded_field(nz, ny, nx, seed=0):
    """An interior random field inside zero ghost layers."""
    h = HALF_ORDER
    rng = np.random.default_rng(seed)
    p = np.zeros((nz + 2 * h, ny + 2 * h, nx + 2 * h))
    p[h:-h, h:-h, h:-h] = rng.random((nz, ny, nx))
    return p


class TestStencil:
    def test_laplacian_of_constant_is_zero(self):
        h = HALF_ORDER
        p = np.ones((2 * h + 6,) * 3)
        out = np.empty((6, 6, 6))
        laplacian_8th(p, out)
        np.testing.assert_allclose(out, 0.0, atol=1e-12)

    def test_laplacian_of_quadratic(self):
        # f = z^2 + 2y^2 + 3x^2 -> laplacian = 2 + 4 + 6 = 12 exactly
        # (an 8th-order scheme is exact on polynomials of degree <= 8).
        h = HALF_ORDER
        n = 2 * h + 5
        z, y, x = np.meshgrid(*(np.arange(n, dtype=float),) * 3, indexing="ij")
        p = z**2 + 2 * y**2 + 3 * x**2
        out = np.empty((5, 5, 5))
        laplacian_8th(p, out)
        np.testing.assert_allclose(out, 12.0, rtol=1e-9)

    def test_grid_too_small_rejected(self):
        with pytest.raises(ValueError):
            laplacian_8th(np.zeros((8, 8, 8)), np.zeros((0, 0, 0)))

    def test_slab_union_equals_whole_step(self):
        """Propagating [0,k) and [k,nz) slabs == propagating everything."""
        nz, ny, nx = 16, 6, 6
        cur = padded_field(nz, ny, nx, seed=1)
        prev = padded_field(nz, ny, nx, seed=2)
        whole = np.zeros_like(cur)
        split = np.zeros_like(cur)
        propagate_slab(whole, cur, prev, 0.1, 0, nz)
        propagate_slab(split, cur, prev, 0.1, 0, 7)
        propagate_slab(split, cur, prev, 0.1, 7, nz)
        np.testing.assert_allclose(split, whole)

    def test_decomposed_propagation_matches_monolithic(self):
        """The halo/bulk machinery computes the same wavefield: split the
        grid in two, exchange ghost planes each step, compare against the
        single-domain reference after several steps."""
        h = HALF_ORDER
        nz, ny, nx = 24, 6, 6
        vdt2 = 0.05
        steps = 5
        cur0 = padded_field(nz, ny, nx, seed=3)
        prev0 = padded_field(nz, ny, nx, seed=4)
        ref = propagate_reference(cur0, prev0, vdt2, steps)

        subs = decompose(nz, ny, nx, 2, periodic=False)
        # Local padded fields per rank.
        local = []
        for sub in subs:
            csub = np.zeros((sub.nz + 2 * h, ny + 2 * h, nx + 2 * h))
            psub = np.zeros_like(csub)
            csub[h:-h] = cur0[h + sub.z0 : h + sub.z0 + sub.nz]
            psub[h:-h] = prev0[h + sub.z0 : h + sub.z0 + sub.nz]
            local.append([csub, psub, np.zeros_like(csub)])

        def exchange():
            lo, hi = local[0][0], local[1][0]
            hi[:h] = lo[-2 * h : -h]  # rank0's top interior -> rank1's ghost
            lo[-h:] = hi[h : 2 * h]  # rank1's bottom interior -> rank0's ghost

        for _ in range(steps):
            exchange()
            for sub, (csub, psub, nsub) in zip(subs, local):
                propagate_slab(nsub, csub, psub, vdt2, 0, sub.nz)
            for slot in local:
                slot[1], slot[0], slot[2] = slot[0], slot[2], slot[1]

        got = np.concatenate([local[0][0][h:-h], local[1][0][h:-h]], axis=0)
        np.testing.assert_allclose(got, ref[h:-h], rtol=1e-10, atol=1e-12)

    def test_cost_model_flops(self):
        assert stencil_cost(1000).flops == pytest.approx(80000.0)


class TestDecompose:
    def test_slabs_cover_grid(self):
        subs = decompose(100, 8, 8, 3)
        assert sum(s.nz for s in subs) == 100
        assert subs[0].z0 == 0 and subs[-1].z0 + subs[-1].nz == 100

    def test_periodic_gives_all_halos(self):
        subs = decompose(64, 8, 8, 2, periodic=True)
        assert all(s.has_lower and s.has_upper for s in subs)

    def test_non_periodic_edges(self):
        subs = decompose(64, 8, 8, 2, periodic=False)
        assert not subs[0].has_lower and subs[0].has_upper
        assert subs[1].has_lower and not subs[1].has_upper

    def test_too_many_ranks_rejected(self):
        with pytest.raises(ValueError):
            decompose(16, 8, 8, 4)

    def test_halo_ratio_grows_with_rank_count(self):
        r2 = decompose(256, 64, 64, 2)[0].halo_ratio
        r8 = decompose(256, 64, 64, 8)[0].halo_ratio
        assert r8 > r2

    def test_ranges(self):
        sub = Subdomain(0, 0, 32, 8, 8, has_lower=True, has_upper=True)
        assert sub.lower_halo_range() == (0, HALF_ORDER)
        assert sub.upper_halo_range() == (32 - HALF_ORDER, 32)
        assert sub.bulk_range() == (HALF_ORDER, 32 - HALF_ORDER)
        assert sub.halo_points + sub.bulk_points == sub.total_points


GRID = (512, 256, 256)  # small enough for fast sim tests


def sim_rtm(ncards=1, **kw):
    hs = HStreams(platform=make_platform("HSW", max(ncards, 1)), backend="sim", trace=False)
    return run_rtm(hs, grid=GRID, steps=8, **kw)


class TestSchemes:
    def test_bad_scheme_and_exchange(self):
        hs = HStreams(backend="sim", trace=False)
        with pytest.raises(ValueError):
            run_rtm(hs, scheme="magic")
        with pytest.raises(ValueError):
            run_rtm(hs, scheme="async", exchange="psychic")

    def test_ranks_need_cards(self):
        hs = HStreams(platform=make_platform("HSW", 1), backend="sim", trace=False)
        with pytest.raises(ValueError):
            run_rtm(hs, nranks=3, scheme="sync")

    def test_async_pipelining_beats_sync(self):
        """The paper's 3-10% asynchronous pipelining benefit."""
        sync = sim_rtm(ncards=2, nranks=2, scheme="sync")
        asyn = sim_rtm(ncards=2, nranks=2, scheme="async")
        ratio = asyn.mpoints_per_s / sync.mpoints_per_s
        assert 1.01 < ratio < 1.35

    def test_optimized_knc_beats_host(self):
        """Paper: 1.52x for 1 card with optimized code."""
        host = sim_rtm(ncards=1, scheme="host")
        card = sim_rtm(ncards=1, nranks=1, scheme="async")
        assert 1.3 < card.mpoints_per_s / host.mpoints_per_s < 1.8

    def test_unoptimized_speedup_is_lower(self):
        """Paper: unvectorized code hurts the card far more (1.13x)."""
        host = sim_rtm(ncards=1, scheme="host", optimized=False)
        card = sim_rtm(ncards=1, nranks=1, scheme="async", optimized=False)
        host_o = sim_rtm(ncards=1, scheme="host")
        card_o = sim_rtm(ncards=1, nranks=1, scheme="async")
        assert (card.mpoints_per_s / host.mpoints_per_s) < (
            card_o.mpoints_per_s / host_o.mpoints_per_s
        )

    def test_four_ranks_scale(self):
        """Paper: 6.02x for 4 ranks on 4 MICs over one host."""
        host = sim_rtm(ncards=1, scheme="host")
        four = sim_rtm(ncards=4, nranks=4, scheme="async")
        assert four.mpoints_per_s / host.mpoints_per_s > 4.0

    def test_dependence_beats_barrier_at_high_halo_ratio(self):
        """§V: the FIFO-barrier scheme loses when halo/interior grows."""
        thin = (160, 512, 512)  # thin slabs, fat faces
        hs1 = HStreams(platform=make_platform("HSW", 4), backend="sim", trace=False)
        dep = run_rtm(hs1, grid=thin, steps=8, nranks=4, scheme="async",
                      exchange="dependence")
        hs2 = HStreams(platform=make_platform("HSW", 4), backend="sim", trace=False)
        bar = run_rtm(hs2, grid=thin, steps=8, nranks=4, scheme="async",
                      exchange="barrier")
        assert dep.mpoints_per_s > 1.05 * bar.mpoints_per_s

    def test_result_metadata(self):
        r = sim_rtm(ncards=1, nranks=1, scheme="async")
        assert r.nranks == 1 and r.steps == 8
        assert r.points == GRID[0] * GRID[1] * GRID[2]
        assert r.halo_ratio > 0


class TestHLIB:
    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError):
            HLIB(target="fpga")

    @pytest.mark.parametrize("target", ["hstreams", "cpu", "cuda"])
    def test_same_program_runs_on_all_backends(self, target):
        """The paper's porting claim: one HLIB program, many back ends."""
        hl = HLIB(target=target, backend="sim")
        hl.hl_register("wave", cost_fn=lambda *a: stencil_cost(1e6))
        hl.hl_alloc("p", 1 << 20)
        hl.hl_put("p")
        hl.hl_run("wave", names=["p"], cost=stencil_cost(1e6))
        hl.hl_get("p")
        hl.hl_sync()
        assert hl.hl_elapsed() > 0
        hl.hl_free("p")
        hl.hl_fini()

    def test_functional_roundtrip_on_thread_backend(self):
        hl = HLIB(target="hstreams", backend="thread")
        hl.hl_register("dbl", fn=lambda x: np.multiply(x, 2.0, out=x))
        data = np.arange(8.0)
        out = np.zeros(8)
        hl.hl_alloc("p", data.nbytes)
        hl.hl_put("p", host=data)
        hl.hl_run("dbl", names=["p"])
        hl.hl_get("p", host=out)
        hl.hl_sync()
        np.testing.assert_array_equal(out, np.arange(8.0) * 2)
        hl.hl_fini()

    def test_double_alloc_rejected(self):
        hl = HLIB(backend="sim")
        hl.hl_alloc("p", 64)
        with pytest.raises(ValueError):
            hl.hl_alloc("p", 64)

    def test_missing_array_rejected(self):
        hl = HLIB(backend="sim")
        with pytest.raises(ValueError):
            hl.hl_put("ghost")


class TestHlibRtmPort:
    """§V's porting claim: one HLIB program, three back ends."""

    @pytest.mark.parametrize("target", ["hstreams", "cuda", "cpu"])
    def test_same_rtm_loop_runs_everywhere(self, target):
        from repro.apps.rtm.hlib import hlib_rtm_steps

        hl = HLIB(target=target, backend="sim",
                  platform=make_platform("HSW", 1))
        elapsed = hlib_rtm_steps(hl, grid=(128, 128, 128), steps=3)
        assert elapsed > 0
        hl.hl_fini()

    def test_offload_targets_pay_for_transfers(self):
        from repro.apps.rtm.hlib import hlib_rtm_steps

        times = {}
        for target in ("hstreams", "cpu"):
            hl = HLIB(target=target, backend="sim",
                      platform=make_platform("HSW", 1))
            times[target] = hlib_rtm_steps(hl, grid=(96, 96, 96), steps=2)
            hl.hl_fini()
        # On a tiny grid the PCIe round trips dominate: the card loses.
        assert times["hstreams"] > times["cpu"]
