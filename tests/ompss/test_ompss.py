"""Tests for the OmpSs task-dataflow layer."""

import numpy as np
import pytest

from repro import make_platform
from repro.ompss import OmpSsConfig, OmpSsRuntime
from repro.sim.kernels import KernelCost, dgemm


def big_cost(seconds: float) -> KernelCost:
    return KernelCost("default", flops=seconds * 0.45 * 1298.1e9, size=1e9)


@pytest.fixture()
def ompss():
    return OmpSsRuntime(model="hstreams", platform=make_platform("HSW", 1), backend="sim")


class TestConfig:
    def test_bad_model(self):
        with pytest.raises(ValueError):
            OmpSsRuntime(model="sycl")

    def test_bad_schedule(self):
        with pytest.raises(ValueError):
            OmpSsConfig(schedule="random")

    def test_bad_nstreams(self):
        with pytest.raises(ValueError):
            OmpSsConfig(nstreams=0)

    def test_buffer_pool_disabled_by_default(self, ompss):
        """The paper's OmpSs configuration ran without the COI pool."""
        assert not ompss.hstreams.config.use_buffer_pool


class TestDataManagement:
    def test_register_by_array_is_idempotent(self, ompss):
        a = np.zeros(64)
        r1 = ompss.register(a)
        r2 = ompss.register(a)
        assert r1 is r2

    def test_register_by_size(self, ompss):
        r = ompss.register(1 << 20, name="blob")
        assert r.nbytes == 1 << 20 and r.array is None

    def test_initial_validity_is_host_only(self, ompss):
        r = ompss.register(64)
        assert r.valid == {0}

    def test_automatic_h2d_transfer_on_first_read(self, ompss):
        ompss.register_kernel("k", cost_fn=lambda *a: big_cost(0.05))
        r = ompss.register(1 << 20)
        ompss.task("k", ins=[r])
        assert ompss.stats["transfers"] == 1
        assert 1 in r.valid

    def test_no_redundant_transfers(self, ompss):
        ompss.register_kernel("k", cost_fn=lambda *a: big_cost(0.05))
        r = ompss.register(1 << 20)
        ompss.task("k", ins=[r])
        ompss.task("k", ins=[r])  # already valid on device
        assert ompss.stats["transfers"] == 1

    def test_write_invalidates_host_copy(self, ompss):
        ompss.register_kernel("k", cost_fn=lambda *a: big_cost(0.05))
        r = ompss.register(1 << 20)
        ompss.task("k", outs=[r])
        assert r.valid == {1}

    def test_taskwait_flushes_dirty_data_home(self, ompss):
        ompss.register_kernel("k", cost_fn=lambda *a: big_cost(0.05))
        r = ompss.register(1 << 20)
        ompss.task("k", outs=[r])
        ompss.taskwait()
        assert 0 in r.valid

    def test_taskwait_without_flush(self, ompss):
        ompss.register_kernel("k", cost_fn=lambda *a: big_cost(0.05))
        r = ompss.register(1 << 20)
        ompss.task("k", outs=[r])
        before = ompss.stats["transfers"]
        ompss.taskwait(flush=False)
        assert ompss.stats["transfers"] == before
        assert r.valid == {1}


class TestDependences:
    def test_raw_dependence_orders_tasks(self, ompss):
        ompss.register_kernel("k", cost_fn=lambda *a: big_cost(0.1))
        r = ompss.register(1 << 10)
        t1 = ompss.task("k", outs=[r])
        t2 = ompss.task("k", ins=[r])
        ompss.taskwait()
        assert t2.event.timestamp >= t1.event.timestamp

    def test_war_dependence_orders_tasks(self, ompss):
        ompss.register_kernel("k", cost_fn=lambda *a: big_cost(0.1))
        r = ompss.register(1 << 10)
        t_read = ompss.task("k", ins=[r])
        t_write = ompss.task("k", outs=[r])
        ompss.taskwait()
        assert t_write.event.timestamp >= t_read.event.timestamp

    def test_independent_tasks_run_concurrently(self, ompss):
        ompss.register_kernel("k", cost_fn=lambda *a: big_cost(0.4))
        regions = [ompss.register(1 << 10) for _ in range(4)]
        t0 = ompss.elapsed()
        for r in regions:
            ompss.task("k", inouts=[r])
        ompss.taskwait()
        span = ompss.elapsed() - t0
        # 4 tasks, 4 streams of 15 cores each: ~4x task time on a quarter
        # device each, concurrent -> far less than serialized full-width.
        serial_full_width = 4 * 0.4
        assert span < 1.5 * serial_full_width

    def test_dep_edge_stats(self, ompss):
        ompss.register_kernel("k", cost_fn=lambda *a: big_cost(0.05))
        r = ompss.register(64)
        ompss.task("k", outs=[r])
        ompss.task("k", ins=[r])
        assert ompss.stats["dep_edges"] >= 1


class TestScheduling:
    def test_round_robin_spreads(self):
        rt = OmpSsRuntime(
            model="hstreams",
            backend="sim",
            config=OmpSsConfig(schedule="round_robin", nstreams=3),
        )
        rt.register_kernel("k", cost_fn=lambda *a: big_cost(0.01))
        handles = [rt.task("k", inouts=[rt.register(64)]) for _ in range(6)]
        assert [h.stream_index for h in handles] == [0, 1, 2, 0, 1, 2]

    def test_locality_follows_the_producer(self, ompss):
        ompss.register_kernel("k", cost_fn=lambda *a: big_cost(0.02))
        r = ompss.register(1 << 20)
        t1 = ompss.task("k", outs=[r])
        t2 = ompss.task("k", ins=[r])
        assert t2.stream_index == t1.stream_index


class TestFunctionalThreadBackend:
    def test_dataflow_chain_executes_correctly(self):
        rt = OmpSsRuntime(
            model="hstreams",
            platform=make_platform("HSW", 1),
            backend="thread",
            trace=False,
        )
        rt.register_kernel("init", fn=lambda x: x.fill(2.0))
        rt.register_kernel("sq", fn=lambda x: np.multiply(x, x, out=x))
        data = np.zeros(16)
        rt.task("init", args=(data,), outs=[data])
        rt.task("sq", args=(data,), inouts=[data])
        rt.taskwait()
        np.testing.assert_array_equal(data, 4.0 * np.ones(16))
        rt.fini()

    def test_cuda_model_dataflow_chain(self):
        rt = OmpSsRuntime(
            model="cuda",
            platform=make_platform("HSW", 1),
            backend="thread",
            trace=False,
        )
        rt.register_kernel("init", fn=lambda x: x.fill(3.0))
        rt.register_kernel("inc", fn=lambda x: np.add(x, 1.0, out=x))
        data = np.zeros(8)
        rt.task("init", args=(data,), outs=[data])
        rt.task("inc", args=(data,), inouts=[data])
        rt.taskwait()
        np.testing.assert_array_equal(data, 4.0 * np.ones(8))
        rt.fini()


class TestCudaVsHStreams:
    """The paper's §IV comparison: hStreams beats CUDA Streams under OmpSs."""

    def _matmul(self, model: str, n: int = 4096, tiles: int = 4) -> float:
        rt = OmpSsRuntime(
            model=model, platform=make_platform("HSW", 1), backend="sim", trace=False
        )
        rt.register_kernel("gemm", cost_fn=lambda m, nn, k, *a: dgemm(m, nn, k))
        b = n // tiles
        t0 = rt.elapsed()  # before registration: CUDA's eager mallocs count
        A = [[rt.register(8 * b * b, name=f"A{i}{j}") for j in range(tiles)] for i in range(tiles)]
        B = [[rt.register(8 * b * b, name=f"B{i}{j}") for j in range(tiles)] for i in range(tiles)]
        C = [[rt.register(8 * b * b, name=f"C{i}{j}") for j in range(tiles)] for i in range(tiles)]
        for i in range(tiles):
            for j in range(tiles):
                for k in range(tiles):
                    rt.task(
                        "gemm",
                        args=(b, b, b),
                        ins=[A[i][k], B[k][j]],
                        inouts=[C[i][j]],
                    )
        rt.taskwait()
        return rt.elapsed() - t0

    def test_hstreams_layer_is_faster(self):
        t_h = self._matmul("hstreams")
        t_c = self._matmul("cuda")
        assert t_h < t_c

    def test_stats_show_more_sync_burden_on_cuda(self):
        for model in ("hstreams", "cuda"):
            rt = OmpSsRuntime(model=model, backend="sim", trace=False)
            rt.register_kernel("k", cost_fn=lambda *a: big_cost(0.01))
            r = rt.register(1 << 16)
            rt.task("k", outs=[r])
            rt.task("k", ins=[r])
            rt.taskwait()


class TestSmpHostTasks:
    """OmpSs SMP tasks (device="host") — used by the Cholesky port."""

    def test_host_task_runs_on_host_stream(self):
        rt = OmpSsRuntime(model="hstreams", backend="sim", trace=False)
        rt.register_kernel("k", cost_fn=lambda *a: big_cost(0.05))
        r = rt.register(1 << 16)
        h = rt.task("k", inouts=[r], device="host")
        assert h.stream_index == -1
        rt.taskwait()
        assert r.valid == {0}

    def test_host_task_pulls_dirty_data_home(self):
        rt = OmpSsRuntime(model="hstreams", backend="sim", trace=False)
        rt.register_kernel("k", cost_fn=lambda *a: big_cost(0.05))
        r = rt.register(1 << 20)
        rt.task("k", outs=[r])  # card writes
        before = rt.stats["transfers"]
        rt.task("k", ins=[r], device="host")  # host reads -> d2h
        assert rt.stats["transfers"] == before + 1
        rt.taskwait()

    def test_card_task_after_host_write_transfers_back(self):
        rt = OmpSsRuntime(model="hstreams", backend="sim", trace=False)
        rt.register_kernel("k", cost_fn=lambda *a: big_cost(0.05))
        r = rt.register(1 << 20)
        rt.task("k", outs=[r], device="host")
        before = rt.stats["transfers"]
        rt.task("k", ins=[r])  # card reads -> h2d
        assert rt.stats["transfers"] == before + 1
        rt.taskwait()

    def test_host_and_card_chain_is_ordered(self):
        rt = OmpSsRuntime(model="hstreams", backend="sim", trace=False)
        rt.register_kernel("k", cost_fn=lambda *a: big_cost(0.1))
        r = rt.register(1 << 16)
        t1 = rt.task("k", outs=[r], device="host")
        t2 = rt.task("k", inouts=[r])
        t3 = rt.task("k", ins=[r], device="host")
        rt.taskwait()
        assert t1.event.timestamp <= t2.event.timestamp <= t3.event.timestamp

    def test_cuda_layer_rejects_host_tasks(self):
        rt = OmpSsRuntime(model="cuda", backend="sim", trace=False)
        rt.register_kernel("k", cost_fn=lambda *a: big_cost(0.05))
        r = rt.register(64)
        with pytest.raises(ValueError, match="SMP"):
            rt.task("k", inouts=[r], device="host")

    def test_bad_device_rejected(self):
        rt = OmpSsRuntime(model="hstreams", backend="sim", trace=False)
        rt.register_kernel("k", cost_fn=lambda *a: big_cost(0.05))
        with pytest.raises(ValueError):
            rt.task("k", inouts=[rt.register(8)], device="fpga")

    def test_functional_host_task_on_thread_backend(self):
        rt = OmpSsRuntime(model="hstreams", platform=make_platform("HSW", 1),
                          backend="thread", trace=False)
        rt.register_kernel("init", fn=lambda x: x.fill(5.0))
        rt.register_kernel("neg", fn=lambda x: np.negative(x, out=x))
        data = np.zeros(8)
        rt.task("init", args=(data,), outs=[data])              # card
        rt.task("neg", args=(data,), inouts=[data], device="host")  # host
        rt.taskwait()
        np.testing.assert_array_equal(data, -5.0 * np.ones(8))
        rt.fini()
