"""Tests for the program checker: waivers, reports, and online mode."""

import os
import textwrap

import pytest

from repro import HStreams, OperandMode, make_platform
from repro.analysis import Report, attach_checker, check_program
from repro.analysis.checker import parse_waivers
from repro.analysis.diagnostics import ActionRef, Diagnostic
from repro.sim.kernels import KernelCost

CORPUS = os.path.join(os.path.dirname(__file__), "corpus")


class TestParseWaivers:
    def test_bare_ignore_waives_everything_on_the_line(self):
        waivers = parse_waivers("x = 1\ny = 2  # hsan: ignore\n")
        assert waivers == {2: None}

    def test_rule_list_is_parsed_and_split(self):
        src = "call()  # hsan: ignore[stream-race, missing-d2h]\n"
        assert parse_waivers(src) == {1: {"stream-race", "missing-d2h"}}

    def test_unknown_rule_raises(self):
        with pytest.raises(ValueError, match="no-such-rule"):
            parse_waivers("x  # hsan: ignore[no-such-rule]\n")

    def test_unmarked_source_has_no_waivers(self):
        assert parse_waivers("x = 1\n") == {}


class TestWaiverApplication:
    def write_program(self, tmp_path, suffix):
        # The read_before_init corpus program, with a waiver suffix on
        # the offending enqueue line.
        src = textwrap.dedent(
            """\
            from repro import HStreams, OperandMode, make_platform

            hs = HStreams(platform=make_platform("HSW", 1), backend="sim")
            hs.register_kernel("consume", fn=lambda *a: None)
            s = hs.stream_create(domain=1, ncores=30)
            buf = hs.buffer_create(nbytes=256, name="tile")
            hs.enqueue_compute(s, "consume", args=(buf.tensor((32,), mode=OperandMode.IN),)){}
            hs.thread_synchronize()
            """
        ).format(suffix)
        path = tmp_path / "prog.py"
        path.write_text(src)
        return str(path)

    def test_matching_waiver_moves_diagnostic_aside(self, tmp_path):
        path = self.write_program(
            tmp_path, "  # hsan: ignore[read-before-init]"
        )
        report = check_program(path)
        assert report.diagnostics == []
        assert [d.rule for d in report.waived] == ["read-before-init"]
        assert report.exit_code() == 0

    def test_bare_waiver_covers_any_rule(self, tmp_path):
        path = self.write_program(tmp_path, "  # hsan: ignore")
        report = check_program(path)
        assert report.diagnostics == []
        assert len(report.waived) == 1

    def test_waiver_for_a_different_rule_does_not_match(self, tmp_path):
        path = self.write_program(tmp_path, "  # hsan: ignore[stream-race]")
        report = check_program(path)
        assert [d.rule for d in report.diagnostics] == ["read-before-init"]
        assert report.waived == []
        assert report.exit_code() == 2

    def test_waiver_on_an_unrelated_line_does_not_match(self, tmp_path):
        path = self.write_program(tmp_path, "")
        prog = tmp_path / "prog.py"
        prog.write_text(
            prog.read_text().replace(
                "hs.thread_synchronize()",
                "hs.thread_synchronize()  # hsan: ignore[read-before-init]",
            )
        )
        report = check_program(path)
        assert [d.rule for d in report.diagnostics] == ["read-before-init"]


class TestCheckProgram:
    def test_crashing_program_still_analyzes_its_prefix(self, tmp_path):
        path = tmp_path / "crash.py"
        path.write_text(
            textwrap.dedent(
                """\
                from repro import HStreams, make_platform

                hs = HStreams(platform=make_platform("HSW", 1), backend="sim")
                s = hs.stream_create(domain=1, ncores=30)
                b = hs.buffer_create(nbytes=64)
                hs.enqueue_xfer(s, b)
                raise RuntimeError("numeric check failed")
                """
            )
        )
        report = check_program(str(path))
        assert "numeric check failed" in report.program_error
        assert report.actions == 1  # the prefix was captured
        # The enqueued transfer is never observed (the crash cut the
        # program short): the analyzer still reports on the prefix.
        assert {d.rule for d in report.diagnostics} == {"unwaited-event"}

    def test_clean_sys_exit_is_not_an_error(self, tmp_path):
        path = tmp_path / "exits.py"
        path.write_text("import sys\nsys.exit(0)\n")
        report = check_program(str(path))
        assert report.program_error is None

    def test_nonzero_sys_exit_is_recorded(self, tmp_path):
        path = tmp_path / "exits.py"
        path.write_text("import sys\nsys.exit(3)\n")
        report = check_program(str(path))
        assert report.program_error == "SystemExit: 3"

    def test_program_stdout_does_not_leak_into_reports(self, tmp_path, capsys):
        path = tmp_path / "noisy.py"
        path.write_text("print('chatter')\n")
        check_program(str(path))
        out = capsys.readouterr()
        assert "chatter" not in out.out  # stdout is the report stream

    def test_report_dict_shape(self):
        report = check_program(os.path.join(CORPUS, "race_waw.py"))
        d = report.to_dict()
        assert d["errors"] == 1
        assert d["warnings"] == 0
        assert d["diagnostics"][0]["rule"] == "stream-race"
        assert d["diagnostics"][0]["severity"] == "error"
        assert d["diagnostics"][0]["hint"]
        assert d["runtimes"] == 1

    def test_report_format_mentions_rule_and_verdict(self):
        report = check_program(os.path.join(CORPUS, "race_waw.py"))
        text = report.format()
        assert "error[stream-race]" in text
        assert "1 error(s), 0 warning(s)" in text


class TestReportExitCodes:
    def make(self, rule):
        return Diagnostic(rule=rule, message="m", actions=[ActionRef("a")])

    def test_clean_is_zero(self):
        assert Report(path="p").exit_code() == 0

    def test_warning_only_is_one(self):
        r = Report(path="p", diagnostics=[self.make("missing-d2h")])
        assert r.exit_code() == 1

    def test_any_error_is_two(self):
        r = Report(
            path="p",
            diagnostics=[self.make("missing-d2h"), self.make("stream-race")],
        )
        assert r.exit_code() == 2


class TestOnlineChecker:
    def test_live_run_reports_the_same_race(self):
        # The online checker sees the interleaving that actually
        # happened on a *real* backend — the race is still a race.
        hs = HStreams(platform=make_platform("HSW", 1), backend="sim")
        checker = attach_checker(hs)
        hs.register_kernel(
            "k", cost_fn=lambda *a: KernelCost("k", flops=1e6, size=8)
        )
        s1 = hs.stream_create(domain=1, ncores=30)
        s2 = hs.stream_create(domain=1, ncores=30)
        b = hs.buffer_create(nbytes=64, name="t")
        hs.enqueue_compute(s1, "k", args=(b.tensor((8,), mode=OperandMode.OUT),))
        hs.enqueue_compute(s2, "k", args=(b.tensor((8,), mode=OperandMode.OUT),))
        hs.thread_synchronize()
        diags = checker.finish()
        assert "stream-race" in {d.rule for d in diags}

    def test_live_clean_program_stays_clean(self):
        hs = HStreams(platform=make_platform("HSW", 1), backend="sim")
        checker = attach_checker(hs)
        hs.register_kernel(
            "k", cost_fn=lambda *a: KernelCost("k", flops=1e6, size=8)
        )
        s1 = hs.stream_create(domain=1, ncores=30)
        s2 = hs.stream_create(domain=1, ncores=30)
        b = hs.buffer_create(nbytes=64, name="t")
        ev = hs.enqueue_compute(
            s1, "k", args=(b.tensor((8,), mode=OperandMode.OUT),)
        )
        hs.event_stream_wait(s2, [ev], operands=[b.all_inout()])
        hs.enqueue_compute(s2, "k", args=(b.tensor((8,), mode=OperandMode.IN),))
        hs.thread_synchronize()
        assert checker.finish() == []

    def test_finish_is_idempotent(self):
        hs = HStreams(platform=make_platform("HSW", 1), backend="sim")
        checker = attach_checker(hs)
        hs.thread_synchronize()
        assert checker.finish() == checker.finish()
