"""Regression tests for the staticlint lock-discipline pass.

One fixture snippet per rule, waiver semantics, the report/CLI surface,
and the self-hosting check: the runtime's own sources must lint clean.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.analysis.diagnostics import RULES, Severity
from repro.analysis.staticlint import (
    STATIC_RULES,
    format_rule_catalog,
    lint_paths,
    lint_source,
    main,
)
from repro.analysis.waivers import parse_waivers

SRC_ROOT = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "..", "..", "src", "repro"
)


def lint(snippet: str, in_sim: bool = False):
    return lint_source(textwrap.dedent(snippet), in_sim=in_sim)


def rules_of(findings) -> list:
    return [f.rule for f in findings]


# -- one fixture per rule --------------------------------------------------------


class TestGuardedFieldRule:
    GUARDED = """
        from repro.core.sync import guarded_by, caller_locked, make_lock

        @guarded_by("_lock", "count")
        class Widget:
            def __init__(self):
                self._lock = make_lock("w")
                self.count = 0

            def bump(self):
                with self._lock:
                    self.count += 1

            def racy(self):
                return self.count
    """

    def test_unlocked_access_is_an_error(self):
        findings, waived = lint(self.GUARDED)
        assert rules_of(findings) == ["guarded-field"]
        assert not waived
        (f,) = findings
        assert f.severity is Severity.ERROR
        assert "count" in f.message and "_lock" in f.message

    def test_access_under_with_is_clean(self):
        src = textwrap.dedent(self.GUARDED).replace(
            "        return self.count",
            "        with self._lock:\n            return self.count",
        )
        findings, _ = lint_source(src)
        assert findings == []

    def test_caller_locked_is_allowlisted(self):
        src = textwrap.dedent(self.GUARDED).replace(
            "    def racy(self):",
            '    @caller_locked("_lock")\n    def racy(self):',
        )
        findings, _ = lint_source(src)
        assert findings == []

    def test_init_is_exempt(self):
        # The fixture's own __init__ writes self.count unlocked and is
        # not reported (construction happens-before publication).
        findings, _ = lint(self.GUARDED)
        assert all(f.line > 8 for f in findings)

    def test_condition_over_guard_lock_counts_as_held(self):
        findings, _ = lint(
            """
            from repro.core.sync import guarded_by, make_lock, make_condition

            @guarded_by("_lock", "items")
            class Q:
                def __init__(self):
                    self._lock = make_lock("q")
                    self._cv = make_condition(self._lock, "q.cv")
                    self.items = []

                def pop(self):
                    with self._cv:
                        while not self.items:
                            self._cv.wait()
                        return self.items.pop()
            """
        )
        assert findings == []

    def test_property_aliased_guard_lock(self):
        # A guard lock with no visible construction (e.g. a property
        # aliasing another object's lock) still satisfies the rule when
        # entered with `with`.
        findings, _ = lint(
            """
            from repro.core.sync import guarded_by

            @guarded_by("_lock", "table")
            class Borrower:
                @property
                def _lock(self):
                    return self._owner._lock

                def read(self):
                    with self._lock:
                        return dict(self.table)
            """
        )
        assert findings == []


class TestCvWithoutLockRule:
    def test_wait_outside_with_is_an_error(self):
        findings, _ = lint(
            """
            import threading

            class W:
                def __init__(self):
                    self._cv = threading.Condition()

                def stall(self):
                    self._cv.wait()
            """
        )
        assert rules_of(findings) == ["cv-without-lock"]
        assert findings[0].severity is Severity.ERROR

    def test_notify_under_underlying_lock_is_clean(self):
        findings, _ = lint(
            """
            from repro.core.sync import make_lock, make_condition

            class W:
                def __init__(self):
                    self._lock = make_lock("w")
                    self._cv = make_condition(self._lock, "w.cv")

                def wake(self):
                    with self._lock:
                        self._cv.notify_all()
            """
        )
        assert findings == []


class TestReentrantWithRule:
    def test_nested_with_on_plain_lock_is_an_error(self):
        findings, _ = lint(
            """
            from repro.core.sync import make_lock

            class W:
                def __init__(self):
                    self._lock = make_lock("w")

                def deadlock(self):
                    with self._lock:
                        with self._lock:
                            pass
            """
        )
        assert rules_of(findings) == ["reentrant-with"]

    def test_nested_with_on_reentrant_lock_is_clean(self):
        findings, _ = lint(
            """
            from repro.core.sync import make_lock

            class W:
                def __init__(self):
                    self._lock = make_lock("w", reentrant=True)

                def fine(self):
                    with self._lock:
                        with self._lock:
                            pass
            """
        )
        assert findings == []

    def test_cv_reacquiring_held_nonreentrant_lock(self):
        findings, _ = lint(
            """
            from repro.core.sync import make_lock, make_condition

            class W:
                def __init__(self):
                    self._lock = make_lock("w")
                    self._cv = make_condition(self._lock, "w.cv")

                def deadlock(self):
                    with self._lock:
                        with self._cv:
                            pass
            """
        )
        assert rules_of(findings) == ["reentrant-with"]


class TestLockInHotPathRule:
    HOT = """
        import threading

        class W:
            def op(self):
                lock = threading.Lock()
                with lock:
                    pass
    """

    def test_lock_created_in_method_is_a_warning(self):
        findings, _ = lint(self.HOT)
        assert rules_of(findings) == ["lock-in-hot-path"]
        assert findings[0].severity is Severity.WARNING

    def test_creation_in_init_attach_and_module_scope_is_clean(self):
        findings, _ = lint(
            """
            import threading

            _GLOBAL = threading.Lock()

            class W:
                def __init__(self):
                    self._lock = threading.Lock()

                def attach(self, runtime):
                    self._cv = threading.Condition()
            """
        )
        assert findings == []


class TestWallClockInSimRule:
    TICKING = """
        import time

        def now():
            return time.monotonic()
    """

    def test_reported_only_under_sim(self):
        findings, _ = lint(self.TICKING, in_sim=True)
        assert rules_of(findings) == ["wall-clock-in-sim"]
        findings, _ = lint(self.TICKING, in_sim=False)
        assert findings == []

    def test_time_sleep_is_not_wall_clock(self):
        findings, _ = lint(
            """
            import time

            def nap():
                time.sleep(0.1)
            """,
            in_sim=True,
        )
        assert findings == []


class TestManualBroadcastLoopRule:
    MANUAL = """
        def distribute(hs, streams, buf, domains):
            for d in domains:
                hs.enqueue_xfer(streams[d], buf)
    """

    def test_manual_broadcast_is_a_warning(self):
        findings, _ = lint(self.MANUAL)
        assert rules_of(findings) == ["manual-broadcast-loop"]
        assert findings[0].severity is Severity.WARNING
        assert "broadcast" in findings[0].message

    def test_varying_operand_is_clean(self):
        # A partitioned distribution — each stream gets its own tile —
        # is not a broadcast.
        findings, _ = lint(
            """
            def partition(hs, streams, tiles):
                for i, s in enumerate(streams):
                    hs.enqueue_xfer(s, tiles[i])
            """
        )
        assert findings == []

    def test_fixed_stream_chunk_loop_is_clean(self):
        # Chunking one payload through one stream varies the operand
        # range, not the stream: pipelining, not a manual broadcast.
        findings, _ = lint(
            """
            def chunked(hs, stream, buf, n, c):
                for off in range(0, n, c):
                    hs.enqueue_xfer(stream, buf.range(off, c))
            """
        )
        assert findings == []

    def test_aliased_stream_is_still_reported(self):
        # `s = streams[d]` inside the body is per-iteration state; the
        # alias must not hide the broadcast.
        findings, _ = lint(
            """
            def distribute(hs, streams, buf, domains):
                for d in domains:
                    s = streams[d]
                    hs.enqueue_xfer(s, buf)
            """
        )
        assert rules_of(findings) == ["manual-broadcast-loop"]

    def test_nested_loops_report_once(self):
        # The inner loop broadcasts bufs[i] per outer iteration; outer
        # and inner both inspect the call but only one finding lands.
        findings, _ = lint(
            """
            def distribute(hs, streams, bufs, domains):
                for i in range(4):
                    for d in domains:
                        hs.enqueue_xfer(streams[d], bufs[i])
            """
        )
        assert rules_of(findings) == ["manual-broadcast-loop"]

    def test_keyword_arguments_are_recognized(self):
        findings, _ = lint(
            """
            def distribute(hs, streams, buf, domains):
                for d in domains:
                    hs.enqueue_xfer(stream=streams[d], operand=buf)
            """
        )
        assert rules_of(findings) == ["manual-broadcast-loop"]

    def test_waiver_applies(self):
        findings, waived = lint(
            """
            def intentionally_serial(hs, streams, buf, domains):
                for d in domains:
                    hs.enqueue_xfer(streams[d], buf)  # rtsan: ignore[manual-broadcast-loop]
            """
        )
        assert findings == []
        assert rules_of(waived) == ["manual-broadcast-loop"]


# -- waivers ---------------------------------------------------------------------


class TestWaivers:
    RACY = """
        from repro.core.sync import guarded_by, make_lock

        @guarded_by("_lock", "count")
        class Widget:
            def __init__(self):
                self._lock = make_lock("w")
                self.count = 0

            def racy(self):
                return self.count{waiver}
    """

    def _lint_with(self, waiver: str):
        return lint(self.RACY.format(waiver=waiver))

    def test_bare_waiver_waives_everything_on_the_line(self):
        findings, waived = self._lint_with("  # rtsan: ignore")
        assert findings == []
        assert rules_of(waived) == ["guarded-field"]

    def test_rule_specific_waiver(self):
        findings, waived = self._lint_with("  # rtsan: ignore[guarded-field]")
        assert findings == []
        assert rules_of(waived) == ["guarded-field"]

    def test_waiver_for_a_different_rule_does_not_apply(self):
        findings, waived = self._lint_with("  # rtsan: ignore[reentrant-with]")
        assert rules_of(findings) == ["guarded-field"]
        assert waived == []

    def test_unknown_rule_in_waiver_raises(self):
        with pytest.raises(ValueError, match="unknown rule"):
            self._lint_with("  # rtsan: ignore[no-such-rule]")

    def test_parse_waivers_maps_lines(self):
        waivers = parse_waivers(
            "x = 1\ny = 2  # rtsan: ignore\nz = 3  # rtsan: ignore[guarded-field]\n",
            "rtsan",
            STATIC_RULES,
        )
        assert waivers == {2: None, 3: {"guarded-field"}}


# -- report / paths / CLI --------------------------------------------------------


class TestReportAndCli:
    def _write(self, tmp_path, name: str, body: str) -> str:
        p = tmp_path / name
        p.write_text(textwrap.dedent(body))
        return str(p)

    def test_lint_paths_walks_directories_and_sorts(self, tmp_path):
        self._write(
            tmp_path,
            "hot.py",
            """
            import threading

            def op():
                return threading.Lock()
            """,
        )
        self._write(
            tmp_path,
            "racy.py",
            """
            from repro.core.sync import guarded_by, make_lock

            @guarded_by("_lock", "n")
            class W:
                def __init__(self):
                    self._lock = make_lock("w")
                    self.n = 0

                def racy(self):
                    return self.n
            """,
        )
        report = lint_paths([str(tmp_path)])
        assert report.files == 2
        # Errors sort before warnings.
        assert rules_of(report.findings) == ["guarded-field", "lock-in-hot-path"]
        assert report.exit_code() == 2

    def test_exit_codes(self, tmp_path):
        clean = self._write(tmp_path, "clean.py", "x = 1\n")
        assert lint_paths([clean]).exit_code() == 0
        warn = self._write(
            tmp_path,
            "warn.py",
            """
            import threading

            def op():
                return threading.Lock()
            """,
        )
        assert lint_paths([warn]).exit_code() == 1

    def test_cli_json_output(self, tmp_path, capsys):
        warn = self._write(
            tmp_path,
            "warn.py",
            """
            import threading

            def op():
                return threading.Lock()
            """,
        )
        assert main([warn, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["files"] == 1
        assert payload["warnings"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "lock-in-hot-path"
        assert finding["severity"] == "warning"
        assert finding["hint"]

    def test_cli_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in STATIC_RULES:
            assert rule_id in out

    def test_format_rule_catalog_lists_every_rule(self):
        out = format_rule_catalog("title:", STATIC_RULES)
        assert out.splitlines()[0] == "title:"
        assert len(out.splitlines()) == 1 + len(STATIC_RULES)

    def test_hsan_cli_list_rules_prints_both_catalogs(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.analysis", "--list-rules"],
            capture_output=True,
            text=True,
            check=True,
        )
        for rule_id in RULES:
            assert rule_id in proc.stdout
        for rule_id in STATIC_RULES:
            assert rule_id in proc.stdout


class TestSelfHosting:
    def test_runtime_sources_lint_clean(self):
        """The gate the CI job enforces: src/repro has no errors and no
        unwaived warnings."""
        report = lint_paths([SRC_ROOT])
        assert report.files > 50
        assert report.findings == [], "\n" + report.format()
