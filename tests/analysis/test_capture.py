"""Tests for capture mode: cold-run semantics, shadow-window policy
replay, dangling-wait triage, and session scoping."""

import pytest

from repro import HStreams, OperandMode, make_platform
from repro.analysis import CaptureBackend, capture_session
from repro.analysis.capture import ActionEvent, BufferEvent, StreamEvent, SyncEvent
from repro.core.events import HEvent


def capture_runtime():
    hs = HStreams(
        platform=make_platform("HSW", 1), backend="sim", capture_only=True
    )
    hs.register_kernel("k", fn=lambda *a: None)
    return hs


class TestColdRunSemantics:
    def test_capture_events_never_poll_complete(self):
        # Layers that elide synchronization when a producer polls
        # complete (OmpSs runtime, linalg FlowContext) must behave as
        # on a cold machine, or the captured graph loses exactly the
        # edges the analyzer checks.
        hs = capture_runtime()
        s = hs.stream_create(domain=1, ncores=30)
        b = hs.buffer_create(nbytes=64)
        ev = hs.enqueue_xfer(s, b)
        assert not ev.is_complete()
        hs.thread_synchronize()
        assert not ev.is_complete()  # still cold: nothing ever ran

    def test_capture_backend_is_installed(self):
        hs = capture_runtime()
        assert isinstance(hs.backend, CaptureBackend)
        assert hs.capture is not None

    def test_no_virtual_time_passes_for_work(self):
        hs = capture_runtime()
        s = hs.stream_create(domain=1, ncores=30)
        b = hs.buffer_create(nbytes=1 << 20)
        t0 = hs.elapsed()
        hs.enqueue_xfer(s, b)
        hs.thread_synchronize()
        # The capture clock ticks per API call (monotonicity only);
        # a megabyte transfer costs the same as a no-op.
        assert hs.elapsed() - t0 <= 3.0


class TestRecordedDependences:
    def test_policy_deps_recorded_despite_instant_completion(self):
        # The scheduler's real window is empty under capture (everything
        # folds at admission): dep edges must come from the shadow
        # replay of the stream's own policy.
        hs = capture_runtime()
        s = hs.stream_create(domain=1, ncores=30)
        b = hs.buffer_create(nbytes=64)
        hs.enqueue_xfer(s, b)
        hs.enqueue_compute(s, "k", args=(b.tensor((8,)),))
        first, second = hs.capture.trace.actions()
        assert first.action.seq in second.dep_seqs

    def test_disjoint_actions_record_no_edge(self):
        hs = capture_runtime()
        s = hs.stream_create(domain=1, ncores=30)
        b = hs.buffer_create(nbytes=64)
        hs.enqueue_compute(s, "k", args=(b.range(0, 32, OperandMode.OUT),))
        hs.enqueue_compute(s, "k", args=(b.range(32, 32, OperandMode.OUT),))
        first, second = hs.capture.trace.actions()
        assert second.dep_seqs == ()

    def test_explicit_event_dep_recorded_across_streams(self):
        hs = capture_runtime()
        s1 = hs.stream_create(domain=1, ncores=30)
        s2 = hs.stream_create(domain=1, ncores=30)
        b = hs.buffer_create(nbytes=64)
        ev = hs.enqueue_compute(s1, "k", args=(b.tensor((8,)),))
        hs.event_stream_wait(s2, [ev])
        producer, sync = hs.capture.trace.actions()
        assert producer.action.seq in sync.dep_seqs
        assert sync.dangling == ()  # known seq: an edge, not a hazard

    def test_bare_event_wait_is_recorded_as_dangling(self):
        hs = capture_runtime()
        s = hs.stream_create(domain=1, ncores=30)
        bare = HEvent(hs.backend, hs.backend.make_handle())
        hs.event_stream_wait(s, [bare])
        (sync,) = hs.capture.trace.actions()
        assert sync.dangling
        assert "bare event" in sync.dangling[0]


class TestTraceContents:
    def test_trace_records_every_lifecycle_kind(self):
        hs = capture_runtime()
        s = hs.stream_create(domain=1, ncores=30)
        b = hs.buffer_create(nbytes=64)
        hs.enqueue_xfer(s, b)
        hs.stream_synchronize(s)
        hs.buffer_evict(b, 1)
        hs.buffer_destroy(b)
        kinds = {type(e) for e in hs.capture.trace}
        assert kinds == {ActionEvent, BufferEvent, StreamEvent, SyncEvent}
        buffer_kinds = [
            e.kind for e in hs.capture.trace if isinstance(e, BufferEvent)
        ]
        assert buffer_kinds == ["create", "evict", "destroy"]

    def test_sites_point_into_user_code(self):
        hs = capture_runtime()
        s = hs.stream_create(domain=1, ncores=30)
        b = hs.buffer_create(nbytes=64)
        hs.enqueue_xfer(s, b)
        (ev,) = hs.capture.trace.actions()
        assert ev.site is not None
        assert ev.site[0] == __file__

    def test_positions_are_strictly_increasing(self):
        hs = capture_runtime()
        s = hs.stream_create(domain=1, ncores=30)
        b = hs.buffer_create(nbytes=64)
        hs.enqueue_xfer(s, b)
        hs.thread_synchronize()
        positions = [e.pos for e in hs.capture.trace]
        assert positions == sorted(positions)
        assert len(set(positions)) == len(positions)


class TestCaptureSession:
    def test_session_forces_capture_on_any_backend(self):
        with capture_session() as runtimes:
            hs = HStreams(platform=make_platform("HSW", 1), backend="sim")
            assert isinstance(hs.backend, CaptureBackend)
        assert runtimes == [hs]

    def test_sessions_do_not_nest(self):
        # The second capture_session raises from __enter__; the raises
        # context between the two catches it, all in one statement.
        with capture_session(), pytest.raises(
            RuntimeError, match="nest"
        ), capture_session():
            pass  # pragma: no cover

    def test_nested_session_raises_invalid_state(self):
        # The guard is a typed HStreamsInvalid (still a RuntimeError for
        # callers that caught the historical bare error).
        from repro.core.errors import HStreamsError, HStreamsInvalid

        with capture_session():
            with pytest.raises(HStreamsInvalid) as exc:
                with capture_session():
                    pass  # pragma: no cover
        assert isinstance(exc.value, HStreamsError)
        assert isinstance(exc.value, RuntimeError)
        assert exc.value.code == "HSTR_RESULT_INVALID_STATE"

    def test_session_reusable_after_failure(self):
        # A session whose body raises — including the nesting error —
        # must leave the registry clean for the next session.
        with pytest.raises(ValueError):
            with capture_session():
                raise ValueError("program bug")
        with capture_session() as runtimes:
            hs = HStreams(platform=make_platform("HSW", 1), backend="thread")
            assert isinstance(hs.backend, CaptureBackend)
        assert runtimes == [hs]

    def test_outside_a_session_backends_are_real(self):
        hs = HStreams(platform=make_platform("HSW", 1), backend="sim")
        assert not isinstance(hs.backend, CaptureBackend)
        assert hs.capture is None

    def test_analysis_capture_is_a_core_reexport(self):
        # The primitives moved to repro.core.capture; the analysis path
        # must keep resolving to the same objects.
        import repro.analysis.capture as shim
        import repro.core.capture as core

        assert shim.CaptureBackend is core.CaptureBackend
        assert shim.capture_session is core.capture_session
        assert shim.ProgramCapture is core.ProgramCapture
        assert shim.policy_dep_seqs is core.policy_dep_seqs
