"""Unit tests for the lint passes and their IntervalSet workhorse."""

from repro import HStreams, OperandMode, XferDirection, make_platform
from repro.analysis import IntervalSet, RuleEngine
from repro.analysis.capture import ActionEvent
from repro.core.actions import Action, ActionKind, Operand
from repro.core.buffer import Buffer, ProxyAddressSpace


class TestIntervalSet:
    def test_empty_set_is_falsy(self):
        assert not IntervalSet()

    def test_add_merges_overlapping_and_touching_ranges(self):
        iv = IntervalSet()
        iv.add(0, 10)
        iv.add(20, 30)
        iv.add(10, 20)  # touches both: everything fuses
        assert iv.spans() == [(0, 30)]

    def test_add_keeps_disjoint_ranges_sorted(self):
        iv = IntervalSet()
        iv.add(50, 60)
        iv.add(0, 10)
        assert iv.spans() == [(0, 10), (50, 60)]

    def test_zero_width_add_is_a_no_op(self):
        iv = IntervalSet()
        iv.add(5, 5)
        assert iv.spans() == []

    def test_subtract_splits_an_interval(self):
        iv = IntervalSet()
        iv.add(0, 100)
        iv.subtract(40, 60)
        assert iv.spans() == [(0, 40), (60, 100)]

    def test_subtract_trims_edges(self):
        iv = IntervalSet()
        iv.add(0, 100)
        iv.subtract(0, 10)
        iv.subtract(90, 100)
        assert iv.spans() == [(10, 90)]

    def test_covers_requires_full_containment(self):
        iv = IntervalSet()
        iv.add(0, 50)
        assert iv.covers(0, 50)
        assert iv.covers(10, 20)
        assert not iv.covers(40, 60)
        assert iv.covers(7, 7)  # empty range is vacuously covered

    def test_intersects_on_any_shared_byte(self):
        iv = IntervalSet()
        iv.add(10, 20)
        assert iv.intersects(19, 30)
        assert not iv.intersects(20, 30)  # half-open: no shared byte

    def test_clear_returns_the_removed_content(self):
        iv = IntervalSet()
        iv.add(0, 10)
        old = iv.clear()
        assert old.spans() == [(0, 10)]
        assert iv.spans() == []


def run_capture(build):
    """Capture ``build(hs)`` and return the analyzed diagnostics."""
    hs = HStreams(
        platform=make_platform("HSW", 1), backend="sim", capture_only=True
    )
    hs.register_kernel("k", fn=lambda *a: None)
    build(hs)
    engine = RuleEngine()
    for event in hs.capture.trace:
        engine.feed(event)
    return engine.finish()


def rules_of(diags):
    return {d.rule for d in diags}


class TestBufferStateLint:
    def test_use_after_destroy(self):
        def build(hs):
            s = hs.stream_create(domain=1, ncores=30)
            b = hs.buffer_create(nbytes=64, name="gone")
            hs.enqueue_xfer(s, b)
            hs.thread_synchronize()
            hs.buffer_destroy(b)
            hs.enqueue_compute(s, "k", args=(Operand(b, 0, 64),))
            hs.thread_synchronize()

        diags = run_capture(build)
        assert "use-after-destroy" in rules_of(diags)
        (d,) = [d for d in diags if d.rule == "use-after-destroy"]
        assert "gone" in d.message

    def test_evict_in_flight_warns_without_host_sync(self):
        def build(hs):
            s = hs.stream_create(domain=1, ncores=30)
            b = hs.buffer_create(nbytes=64, name="busy")
            hs.enqueue_xfer(s, b)
            # No synchronization: on a real platform this evict races
            # the transfer (HStreamsBusy); under capture it is a lint.
            hs.buffer_evict(b, 1)
            hs.thread_synchronize()

        diags = run_capture(build)
        assert "evict-in-flight" in rules_of(diags)

    def test_synced_evict_is_clean(self):
        def build(hs):
            s = hs.stream_create(domain=1, ncores=30)
            b = hs.buffer_create(nbytes=64, name="done")
            hs.enqueue_xfer(s, b)
            hs.stream_synchronize(s)
            hs.buffer_evict(b, 1)

        diags = run_capture(build)
        assert diags == []

    def test_retransfer_after_evict_clears_the_hazard(self):
        def build(hs):
            s = hs.stream_create(domain=1, ncores=30)
            b = hs.buffer_create(nbytes=64, name="cycled")
            hs.enqueue_xfer(s, b)
            hs.stream_synchronize(s)
            hs.buffer_evict(b, 1)
            hs.enqueue_xfer(s, b)  # re-transfer: data is back
            hs.enqueue_compute(s, "k", args=(b.tensor((8,), mode=OperandMode.IN),))
            hs.thread_synchronize()

        diags = run_capture(build)
        assert diags == []

    def test_partial_write_leaves_rest_uninitialized(self):
        def build(hs):
            s = hs.stream_create(domain=1, ncores=30)
            b = hs.buffer_create(nbytes=64, name="half")
            hs.enqueue_xfer(s, b.range(0, 32, OperandMode.OUT))
            hs.enqueue_compute(s, "k", args=(Operand(b, 0, 64, OperandMode.IN),))
            hs.thread_synchronize()

        diags = run_capture(build)
        assert "read-before-init" in rules_of(diags)

    def test_d2h_clears_missing_d2h(self):
        import numpy as np

        def build(hs):
            s = hs.stream_create(domain=1, ncores=30)
            b = hs.wrap(np.ones(8), name="roundtrip")
            hs.enqueue_xfer(s, b)
            hs.enqueue_compute(s, "k", args=(b.tensor((8,)),))
            hs.enqueue_xfer(s, b, XferDirection.SINK_TO_SRC)
            hs.thread_synchronize()

        diags = run_capture(build)
        assert diags == []

    def test_inout_operand_does_not_initialize_itself(self):
        def build(hs):
            s = hs.stream_create(domain=1, ncores=30)
            b = hs.buffer_create(nbytes=64, name="selfread")
            # INOUT reads before its own write lands: still a hazard.
            hs.enqueue_compute(s, "k", args=(b.tensor((8,)),))
            hs.thread_synchronize()

        diags = run_capture(build)
        assert "read-before-init" in rules_of(diags)


class TestUnwaitedEventLint:
    def test_only_the_chain_tail_is_reported(self):
        def build(hs):
            s = hs.stream_create(domain=1, ncores=30)
            b = hs.buffer_create(nbytes=64)
            hs.enqueue_xfer(s, b)  # has a dependent: not reported
            hs.enqueue_compute(s, "k", args=(b.tensor((8,)),))  # the tail

        diags = run_capture(build)
        (d,) = diags
        assert d.rule == "unwaited-event"
        assert d.occurrences == 1
        assert len(d.actions) == 1

    def test_folds_per_stream(self):
        def build(hs):
            s = hs.stream_create(domain=1, ncores=30)
            bufs = [hs.buffer_create(nbytes=64) for _ in range(6)]
            for b in bufs:  # six independent unobserved actions
                hs.enqueue_xfer(s, b)

        diags = run_capture(build)
        (d,) = diags
        assert d.rule == "unwaited-event"
        assert d.occurrences == 6
        assert len(d.actions) == 4  # refs are capped, count is not


class TestDeadlockLint:
    def test_cycle_back_edge_in_hand_built_trace(self):
        # The public API cannot express a true cycle (enqueue order is
        # a topological order), so the defensive branch is exercised
        # with a hand-built event whose dep points forward.
        space = ProxyAddressSpace()
        buf = Buffer(space, nbytes=64, name="b")
        action = Action(
            kind=ActionKind.COMPUTE,
            stream=None,
            operands=(Operand(buf, 0, 64),),
            kernel="k",
        )
        engine = RuleEngine()
        engine.feed(
            ActionEvent(
                pos=1,
                action=action,
                dep_seqs=(action.seq,),  # waits on itself
            )
        )
        diags = engine.finish()
        assert "deadlock" in rules_of(diags)
        assert any("cycle" in d.message for d in diags)


class TestZeroLengthOperandLint:
    def test_dedup_is_per_site(self):
        def build(hs):
            s = hs.stream_create(domain=1, ncores=30)
            b = hs.buffer_create(nbytes=64, name="z")
            hs.enqueue_xfer(s, b)
            for _ in range(3):  # same source line: one diagnostic
                hs.enqueue_compute(
                    s,
                    "k",
                    args=(b.tensor((8,)),),
                    operands=(b.range(0, 0, OperandMode.IN),),
                )
            hs.thread_synchronize()

        diags = run_capture(build)
        zl = [d for d in diags if d.rule == "zero-length-operand"]
        assert len(zl) == 1
        assert zl[0].occurrences == 3


class TestEngineOrdering:
    def test_errors_sort_before_warnings(self):
        def build(hs):
            s1 = hs.stream_create(domain=1, ncores=30)
            s2 = hs.stream_create(domain=1, ncores=30)
            b = hs.buffer_create(nbytes=64, name="t")
            hs.enqueue_xfer(s1, b)
            # race (error) ...
            hs.enqueue_compute(s2, "k", args=(b.tensor((8,), mode=OperandMode.IN),))
            # ... and a zero-length operand (warning)
            hs.enqueue_compute(
                s1, "k",
                args=(b.tensor((8,)),),
                operands=(b.range(0, 0, OperandMode.IN),),
            )
            hs.thread_synchronize()

        diags = run_capture(build)
        severities = [d.severity.value for d in diags]
        assert severities == sorted(severities, key=["error", "warning"].index)
        assert diags[0].rule == "stream-race"
