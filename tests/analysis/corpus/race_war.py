"""Hazard: a reader and a later writer in different streams, unordered.

Stream s2 waits on the *transfer* (so the clobber is ordered after the
initialization and the WAW pair disappears) but nothing orders it
against s1's reader.

Expected: stream-race (WAR).
"""

from repro import HStreams, OperandMode, make_platform

hs = HStreams(platform=make_platform("HSW", 1), backend="sim")
hs.register_kernel("reader", fn=lambda *a: None)
hs.register_kernel("clobber", fn=lambda *a: None)
s1 = hs.stream_create(domain=1, ncores=30)
s2 = hs.stream_create(domain=1, ncores=30)
buf = hs.buffer_create(nbytes=256, name="tile")

ev = hs.enqueue_xfer(s1, buf)  # host -> card
hs.enqueue_compute(s1, "reader", args=(buf.tensor((32,), mode=OperandMode.IN),))

hs.event_stream_wait(s2, [ev], operands=[buf.all_inout()])
hs.enqueue_compute(s2, "clobber", args=(buf.tensor((32,), mode=OperandMode.OUT),))

hs.thread_synchronize()
hs.fini()
