"""Hazard: one stream transfers data in, another reads it — no event.

Expected: stream-race (RAW between the transfer's sink write and the
consumer's read).
"""

from repro import HStreams, OperandMode, make_platform

hs = HStreams(platform=make_platform("HSW", 1), backend="sim")
hs.register_kernel("consume", fn=lambda *a: None)
s1 = hs.stream_create(domain=1, ncores=30)
s2 = hs.stream_create(domain=1, ncores=30)
buf = hs.buffer_create(nbytes=256, name="tile")

hs.enqueue_xfer(s1, buf)  # host -> card, writes the sink instance
hs.enqueue_compute(s2, "consume", args=(buf.tensor((32,), mode=OperandMode.IN),))

hs.thread_synchronize()
hs.fini()
