"""Hazard: the sink reads host-initialized data never transferred over.

Expected: stale-read (warning — the read itself is well-defined, it
just sees zeros instead of the host's values).
"""

import numpy as np

from repro import HStreams, OperandMode, make_platform

hs = HStreams(platform=make_platform("HSW", 1), backend="sim")
hs.register_kernel("consume", fn=lambda *a: None)
s = hs.stream_create(domain=1, ncores=30)
x = np.ones(32)
buf = hs.wrap(x, name="hostdata")

# Missing: hs.enqueue_xfer(s, buf) — the sink instance holds zeros.
hs.enqueue_compute(s, "consume", args=(buf.tensor((32,), mode=OperandMode.IN),))

hs.thread_synchronize()
hs.fini()
