"""Hazard: a stream waits on an event no action of this program fires.

Expected: deadlock. A real run would block forever in the sink's wait
loop (or raise, depending on backend); the analyzer reports the
unsatisfiable wait statically.
"""

from repro import HStreams, make_platform
from repro.core.events import HEvent

hs = HStreams(platform=make_platform("HSW", 1), backend="sim")
s = hs.stream_create(domain=1, ncores=30)
buf = hs.buffer_create(nbytes=256, name="tile")

# A bare event: constructed by hand, owned by no enqueued action.
bare = HEvent(hs.backend, hs.backend.make_handle())
hs.event_stream_wait(s, [bare])

hs.thread_synchronize()
hs.fini()
