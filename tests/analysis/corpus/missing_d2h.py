"""Hazard: the sink updates host-visible memory that never comes back.

Expected: missing-d2h (warning — the host array still holds the
pre-offload values when the program ends).
"""

import numpy as np

from repro import HStreams, make_platform

hs = HStreams(platform=make_platform("HSW", 1), backend="sim")
hs.register_kernel("scale", fn=lambda *a: None)
s = hs.stream_create(domain=1, ncores=30)
y = np.ones(32)
buf = hs.wrap(y, name="result")

hs.enqueue_xfer(s, buf)  # host -> card
hs.enqueue_compute(s, "scale", args=(buf.tensor((32,)),))  # INOUT: sink write

# Missing: hs.enqueue_xfer(s, buf, XferDirection.SINK_TO_SRC)
hs.thread_synchronize()
hs.fini()
