"""Clean: cross-stream ordering through a blocking host synchronization.

Once the source thread drains s1, everything it observed
happens-before every action it enqueues afterwards — s2 needs no event
of its own.

Expected: zero diagnostics.
"""

import numpy as np

from repro import HStreams, OperandMode, XferDirection, make_platform

hs = HStreams(platform=make_platform("HSW", 1), backend="sim")
hs.register_kernel("scale", fn=lambda *a: None)
hs.register_kernel("consume", fn=lambda *a: None)
s1 = hs.stream_create(domain=1, ncores=30)
s2 = hs.stream_create(domain=1, ncores=30)
y = np.ones(32)
buf = hs.wrap(y, name="result")

hs.enqueue_xfer(s1, buf)
hs.enqueue_compute(s1, "scale", args=(buf.tensor((32,)),))
hs.stream_synchronize(s1)  # the host observed all of s1's work

hs.enqueue_compute(s2, "consume", args=(buf.tensor((32,), mode=OperandMode.IN),))
hs.enqueue_xfer(s2, buf, XferDirection.SINK_TO_SRC)

hs.thread_synchronize()
hs.fini()
