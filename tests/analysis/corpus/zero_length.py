"""Hazard: an operand covering zero bytes orders nothing.

Expected: zero-length-operand (warning — the empty range never
conflicts, so the operand is dependence-inert; almost always a size
arithmetic bug).
"""

from repro import HStreams, OperandMode, make_platform

hs = HStreams(platform=make_platform("HSW", 1), backend="sim")
hs.register_kernel("consume", fn=lambda *a: None)
s = hs.stream_create(domain=1, ncores=30)
buf = hs.buffer_create(nbytes=256, name="tile")

hs.enqueue_xfer(s, buf)
hs.enqueue_compute(
    s,
    "consume",
    args=(buf.tensor((32,)),),
    operands=(buf.range(128, 0, OperandMode.IN),),  # n - n bytes, oops
)

hs.thread_synchronize()
hs.fini()
