"""Hazard: read an evicted instance without re-transferring the data.

Expected: use-after-evict.
"""

from repro import HStreams, OperandMode, make_platform

hs = HStreams(platform=make_platform("HSW", 1), backend="sim")
hs.register_kernel("consume", fn=lambda *a: None)
s = hs.stream_create(domain=1, ncores=30)
buf = hs.buffer_create(nbytes=256, name="tile")

hs.enqueue_xfer(s, buf)  # host -> card
hs.stream_synchronize(s)  # drain, so the evict itself is legal
hs.buffer_evict(buf, 1)

# The instance re-materializes zero-filled; the transferred data is gone.
hs.enqueue_compute(s, "consume", args=(buf.tensor((32,), mode=OperandMode.IN),))

hs.thread_synchronize()
hs.fini()
