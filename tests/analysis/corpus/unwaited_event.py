"""Hazard: fire-and-forget work — nothing ever observes completion.

Expected: unwaited-event (warning). Only the tail of the chain is
reported: the transfer has a dependent (the compute), the compute has
none and no host synchronization ever runs.
"""

from repro import HStreams, make_platform

hs = HStreams(platform=make_platform("HSW", 1), backend="sim")
hs.register_kernel("scale", fn=lambda *a: None)
s = hs.stream_create(domain=1, ncores=30)
buf = hs.buffer_create(nbytes=256, name="tile")

hs.enqueue_xfer(s, buf)
hs.enqueue_compute(s, "scale", args=(buf.tensor((32,)),))
# No event_wait / stream_synchronize / thread_synchronize: the program
# ends without ever learning whether the work ran.
