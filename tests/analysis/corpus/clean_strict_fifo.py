"""Clean: a single strict-FIFO stream — total order, no cross-stream work.

Expected: zero diagnostics.
"""

from repro import HStreams, XferDirection, make_platform

hs = HStreams(platform=make_platform("HSW", 1), backend="sim")
hs.register_kernel("scale", fn=lambda *a: None)
s = hs.stream_create(domain=1, ncores=30, strict_fifo=True)
tiles = [hs.buffer_create(nbytes=256, name=f"tile{i}") for i in range(3)]

for b in tiles:
    hs.enqueue_xfer(s, b)
    hs.enqueue_compute(s, "scale", args=(b.tensor((32,)),))
hs.enqueue_xfer(s, tiles[0], XferDirection.SINK_TO_SRC)

hs.stream_synchronize(s)
hs.fini()
