"""Clean: producer and consumer streams ordered by a scoped event wait.

Expected: zero diagnostics.
"""

import numpy as np

from repro import HStreams, OperandMode, XferDirection, make_platform

hs = HStreams(platform=make_platform("HSW", 1), backend="sim")
hs.register_kernel("scale", fn=lambda *a: None)
hs.register_kernel("consume", fn=lambda *a: None)
s1 = hs.stream_create(domain=1, ncores=30)
s2 = hs.stream_create(domain=1, ncores=30)
y = np.ones(32)
buf = hs.wrap(y, name="result")

hs.enqueue_xfer(s1, buf)  # host -> card
ev = hs.enqueue_compute(s1, "scale", args=(buf.tensor((32,)),))

# The scoped wait orders every later s2 action touching buf after the
# producer — and, transitively, after the transfer it depends on.
hs.event_stream_wait(s2, [ev], operands=[buf.all_inout()])
hs.enqueue_compute(s2, "consume", args=(buf.tensor((32,), mode=OperandMode.IN),))
hs.enqueue_xfer(s2, buf, XferDirection.SINK_TO_SRC)  # card -> host

hs.thread_synchronize()
hs.fini()
