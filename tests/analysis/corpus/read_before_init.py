"""Hazard: a sink task reads a range nothing ever wrote.

Expected: read-before-init.
"""

from repro import HStreams, OperandMode, make_platform

hs = HStreams(platform=make_platform("HSW", 1), backend="sim")
hs.register_kernel("consume", fn=lambda *a: None)
s = hs.stream_create(domain=1, ncores=30)
buf = hs.buffer_create(nbytes=256, name="tile")

hs.enqueue_compute(s, "consume", args=(buf.tensor((32,), mode=OperandMode.IN),))

hs.thread_synchronize()
hs.fini()
