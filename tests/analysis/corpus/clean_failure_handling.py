"""Clean: a fault-injected, retry-recovering pipeline.

The program arms a deterministic transient fault on its compute kernel
and runs under ``failure_policy="retry"`` — when executed for real, the
first attempt raises, the scheduler re-dispatches with backoff, and the
pipeline completes. Under capture nothing executes, so the fault plan is
inert and the analyzer sees an ordinarily well-synchronized program.

Expected: zero diagnostics.
"""

import numpy as np

from repro import (
    FaultPlan,
    FaultSpec,
    HStreams,
    XferDirection,
    inject_faults,
    make_platform,
)

hs = HStreams(
    platform=make_platform("HSW", 1),
    backend="sim",
    failure_policy="retry",
)
hs.register_kernel("scale", fn=lambda x, f: np.multiply(x, f, out=x))
inject_faults(
    hs,
    FaultPlan(
        specs=(
            FaultSpec(kind="compute", kernel="scale", nth=1, transient=True),
        ),
        seed=7,
    ),
)
s = hs.stream_create(domain=1, ncores=30)

data = np.arange(16.0)
buf = hs.wrap(data, name="payload")
hs.enqueue_xfer(s, buf)
hs.enqueue_compute(s, "scale", args=(buf.tensor((16,)), 2.0))
hs.enqueue_xfer(s, buf, XferDirection.SINK_TO_SRC)

hs.thread_synchronize()
hs.fini()
