"""Hazard: two streams write the same sink range, nothing orders them.

Expected: stream-race (WAW).
"""

from repro import HStreams, OperandMode, make_platform

hs = HStreams(platform=make_platform("HSW", 1), backend="sim")
hs.register_kernel("fill", fn=lambda *a: None)
s1 = hs.stream_create(domain=1, ncores=30)
s2 = hs.stream_create(domain=1, ncores=30)
buf = hs.buffer_create(nbytes=256, name="tile")

hs.enqueue_compute(s1, "fill", args=(buf.tensor((32,), mode=OperandMode.OUT),))
hs.enqueue_compute(s2, "fill", args=(buf.tensor((32,), mode=OperandMode.OUT),))

hs.thread_synchronize()
hs.fini()
