"""Unit tests for the happens-before engine.

The interesting property under test: the *relaxed* FIFO semantic makes
same-stream admission order meaningless for non-conflicting actions, so
the engine's authoritative relation (ancestor closure over recorded
edges) must order exactly the pairs the runtime guarantees — no more.
"""

from repro import HStreams, OperandMode, make_platform
from repro.analysis import HOST, HBState, VectorClock


class TestVectorClock:
    def test_empty_clock_components_default_to_zero(self):
        assert VectorClock().get(3) == 0

    def test_join_is_componentwise_max(self):
        a = VectorClock({0: 2, 1: 5})
        b = VectorClock({1: 3, 2: 7})
        j = a.join(b)
        assert j.as_dict() == {0: 2, 1: 5, 2: 7}

    def test_join_with_empty_returns_other_side(self):
        a = VectorClock({0: 1})
        assert a.join(VectorClock()) is a
        assert VectorClock().join(a) is a

    def test_tick_does_not_mutate_original(self):
        a = VectorClock({0: 1})
        b = a.tick(0, 2)
        assert a.get(0) == 1
        assert b.get(0) == 2

    def test_dominates_requires_every_component(self):
        big = VectorClock({0: 3, 1: 3})
        small = VectorClock({0: 2, 1: 3})
        assert big.dominates(small)
        assert not small.dominates(big)
        # Missing components count as zero on the dominating side too.
        assert not VectorClock({0: 9}).dominates(VectorClock({1: 1}))

    def test_repr_names_the_host_component(self):
        assert "host" in repr(VectorClock({HOST: 1}))


def capture_program(build):
    """Run ``build(hs, ...)`` on a capture-only runtime, return its trace."""
    hs = HStreams(
        platform=make_platform("HSW", 1), backend="sim", capture_only=True
    )
    hs.register_kernel("k", fn=lambda *a: None)
    build(hs)
    return hs.capture.trace


def hb_of(trace):
    hb = HBState()
    for event in trace:
        hb.feed(event)
    return hb


def seqs_of(trace):
    return [e.action.seq for e in trace.actions()]


class TestIntraStream:
    def test_conflicting_same_stream_actions_are_ordered(self):
        def build(hs):
            s = hs.stream_create(domain=1, ncores=30)
            b = hs.buffer_create(nbytes=64)
            hs.enqueue_xfer(s, b)
            hs.enqueue_compute(s, "k", args=(b.tensor((8,)),))

        trace = capture_program(build)
        hb = hb_of(trace)
        first, second = seqs_of(trace)
        assert hb.happens_before(first, second)
        assert not hb.happens_before(second, first)

    def test_disjoint_same_stream_actions_are_unordered(self):
        # The relaxed policy's defining property: FIFO admission order
        # does NOT order non-conflicting work of one stream.
        def build(hs):
            s = hs.stream_create(domain=1, ncores=30)
            b = hs.buffer_create(nbytes=64)
            hs.enqueue_compute(
                s, "k", args=(b.range(0, 32, OperandMode.OUT),)
            )
            hs.enqueue_compute(
                s, "k", args=(b.range(32, 32, OperandMode.OUT),)
            )

        trace = capture_program(build)
        hb = hb_of(trace)
        first, second = seqs_of(trace)
        assert not hb.ordered(first, second)

    def test_strict_fifo_orders_disjoint_actions(self):
        def build(hs):
            s = hs.stream_create(domain=1, ncores=30, strict_fifo=True)
            b = hs.buffer_create(nbytes=64)
            hs.enqueue_compute(
                s, "k", args=(b.range(0, 32, OperandMode.OUT),)
            )
            hs.enqueue_compute(
                s, "k", args=(b.range(32, 32, OperandMode.OUT),)
            )

        trace = capture_program(build)
        hb = hb_of(trace)
        first, second = seqs_of(trace)
        assert hb.happens_before(first, second)


class TestCrossStream:
    def test_streams_are_unordered_without_events(self):
        def build(hs):
            s1 = hs.stream_create(domain=1, ncores=30)
            s2 = hs.stream_create(domain=1, ncores=30)
            b = hs.buffer_create(nbytes=64)
            hs.enqueue_compute(s1, "k", args=(b.tensor((8,)),))
            hs.enqueue_compute(s2, "k", args=(b.tensor((8,)),))

        trace = capture_program(build)
        hb = hb_of(trace)
        a, b = seqs_of(trace)
        assert not hb.ordered(a, b)

    def test_event_stream_wait_orders_across_streams(self):
        def build(hs):
            s1 = hs.stream_create(domain=1, ncores=30)
            s2 = hs.stream_create(domain=1, ncores=30)
            b = hs.buffer_create(nbytes=64)
            ev = hs.enqueue_compute(s1, "k", args=(b.tensor((8,)),))
            hs.event_stream_wait(s2, [ev], operands=[b.all_inout()])
            hs.enqueue_compute(s2, "k", args=(b.tensor((8,)),))

        trace = capture_program(build)
        hb = hb_of(trace)
        producer, sync, consumer = seqs_of(trace)
        assert hb.happens_before(producer, sync)
        assert hb.happens_before(sync, consumer)
        assert hb.happens_before(producer, consumer)  # transitive

    def test_host_sync_orders_later_enqueues_after_observed_work(self):
        def build(hs):
            s1 = hs.stream_create(domain=1, ncores=30)
            s2 = hs.stream_create(domain=1, ncores=30)
            b = hs.buffer_create(nbytes=64)
            hs.enqueue_compute(s1, "k", args=(b.tensor((8,)),))
            hs.stream_synchronize(s1)
            hs.enqueue_compute(s2, "k", args=(b.tensor((8,)),))

        trace = capture_program(build)
        hb = hb_of(trace)
        producer, consumer = seqs_of(trace)
        assert hb.happens_before(producer, consumer)
        assert hb.host_observed(producer)
        assert not hb.host_observed(consumer)

    def test_stream_synchronize_covers_only_its_stream(self):
        def build(hs):
            s1 = hs.stream_create(domain=1, ncores=30)
            s2 = hs.stream_create(domain=1, ncores=30)
            b = hs.buffer_create(nbytes=64)
            c = hs.buffer_create(nbytes=64)
            hs.enqueue_compute(s1, "k", args=(b.tensor((8,)),))
            hs.enqueue_compute(s2, "k", args=(c.tensor((8,)),))
            hs.stream_synchronize(s1)
            hs.enqueue_compute(s2, "k", args=(b.tensor((8,)),))

        trace = capture_program(build)
        hb = hb_of(trace)
        in_s1, in_s2, late = seqs_of(trace)
        assert hb.host_observed(in_s1)
        assert not hb.host_observed(in_s2)
        assert hb.happens_before(in_s1, late)
        # Same stream, but conflicting operands on c? No — disjoint
        # buffers, so only the host edge could order them, and the host
        # never observed the s2 predecessor.
        assert not hb.ordered(in_s2, late)

    def test_thread_synchronize_covers_everything(self):
        def build(hs):
            s1 = hs.stream_create(domain=1, ncores=30)
            s2 = hs.stream_create(domain=1, ncores=30)
            b = hs.buffer_create(nbytes=64)
            c = hs.buffer_create(nbytes=64)
            hs.enqueue_compute(s1, "k", args=(b.tensor((8,)),))
            hs.enqueue_compute(s2, "k", args=(c.tensor((8,)),))
            hs.thread_synchronize()

        trace = capture_program(build)
        hb = hb_of(trace)
        for seq in seqs_of(trace):
            assert hb.host_observed(seq)

    def test_event_wait_joins_only_the_waited_action(self):
        def build(hs):
            s1 = hs.stream_create(domain=1, ncores=30)
            b = hs.buffer_create(nbytes=64)
            c = hs.buffer_create(nbytes=64)
            ev = hs.enqueue_compute(s1, "k", args=(b.tensor((8,)),))
            hs.enqueue_compute(s1, "k", args=(c.tensor((8,)),))
            hs.event_wait([ev])

        trace = capture_program(build)
        hb = hb_of(trace)
        waited, other = seqs_of(trace)
        assert hb.host_observed(waited)
        assert not hb.host_observed(other)


class TestQueries:
    def test_unknown_seq_is_never_ordered(self):
        hb = HBState()
        assert not hb.happens_before(1, 2)
        assert not hb.knows(1)
        assert hb.clock(1).as_dict() == {}

    def test_action_never_happens_before_itself(self):
        def build(hs):
            s = hs.stream_create(domain=1, ncores=30)
            b = hs.buffer_create(nbytes=64)
            hs.enqueue_compute(s, "k", args=(b.tensor((8,)),))

        trace = capture_program(build)
        hb = hb_of(trace)
        (seq,) = seqs_of(trace)
        assert hb.knows(seq)
        assert not hb.happens_before(seq, seq)

    def test_clocks_reflect_dependence_joins(self):
        def build(hs):
            s1 = hs.stream_create(domain=1, ncores=30)
            s2 = hs.stream_create(domain=1, ncores=30)
            b = hs.buffer_create(nbytes=64)
            ev = hs.enqueue_compute(s1, "k", args=(b.tensor((8,)),))
            hs.event_stream_wait(s2, [ev], operands=[b.all_inout()])

        trace = capture_program(build)
        hb = hb_of(trace)
        producer, sync = seqs_of(trace)
        events = trace.actions()
        s1_id = events[0].action.stream.id
        s2_id = events[1].action.stream.id
        assert hb.clock(sync).dominates(hb.clock(producer))
        assert hb.clock(sync).get(s1_id) == 1
        assert hb.clock(sync).get(s2_id) == 1

    def test_has_dependent_tracks_edge_targets(self):
        def build(hs):
            s = hs.stream_create(domain=1, ncores=30)
            b = hs.buffer_create(nbytes=64)
            hs.enqueue_xfer(s, b)
            hs.enqueue_compute(s, "k", args=(b.tensor((8,)),))

        trace = capture_program(build)
        hb = hb_of(trace)
        first, second = seqs_of(trace)
        assert first in hb.has_dependent
        assert second not in hb.has_dependent
