"""The seeded hazard corpus: every rule fires where expected, and the
clean variants stay clean.

Each corpus program is a standalone hStreams program checked through
the full :func:`~repro.analysis.check_program` pipeline (capture run,
happens-before construction, every rule pass, waiver filtering).
"""

import os

import pytest

from repro.analysis import check_program

CORPUS = os.path.join(os.path.dirname(__file__), "corpus")

#: (program, the one rule it must trip, CLI exit code, message fragment)
HAZARDS = [
    ("race_waw.py", "stream-race", 2, "WAW race"),
    ("race_raw.py", "stream-race", 2, "RAW race"),
    ("race_war.py", "stream-race", 2, "WAR race"),
    ("read_before_init.py", "read-before-init", 2, "uninitialized read"),
    ("stale_read.py", "stale-read", 1, "never transferred"),
    ("use_after_evict.py", "use-after-evict", 2, "evicted"),
    ("missing_d2h.py", "missing-d2h", 1, "never transferred back"),
    ("unwaited_event.py", "unwaited-event", 1, "unobserved"),
    ("deadlock.py", "deadlock", 2, "never be satisfied"),
    ("zero_length.py", "zero-length-operand", 1, "zero-length operand"),
]

CLEAN = [
    "clean_event_ordered.py",
    "clean_barrier_ordered.py",
    "clean_strict_fifo.py",
    "clean_host_synced.py",
    "clean_failure_handling.py",
]


@pytest.mark.parametrize("program,rule,code,fragment", HAZARDS)
def test_hazard_program_flags_expected_rule(program, rule, code, fragment):
    report = check_program(os.path.join(CORPUS, program))
    assert report.program_error is None
    rules = {d.rule for d in report.diagnostics}
    # Exactly the expected rule: collateral findings would mean the
    # corpus program (or a rule pass) drifted.
    assert rules == {rule}
    assert report.exit_code() == code
    assert any(fragment in d.message for d in report.diagnostics)


@pytest.mark.parametrize("program,rule,code,fragment", HAZARDS)
def test_hazard_diagnostics_carry_action_sites(program, rule, code, fragment):
    path = os.path.join(CORPUS, program)
    report = check_program(path)
    for diag in report.diagnostics:
        if diag.rule == "missing-d2h":
            continue  # end-of-program finding: points at the last write
        assert diag.actions, f"{diag.rule} diagnostic lacks action refs"
        assert any(
            ref.site is not None and ref.site[0] == path
            for ref in diag.actions
        ), f"{diag.rule} diagnostic does not point into the program"


@pytest.mark.parametrize("program", CLEAN)
def test_clean_program_has_zero_diagnostics(program):
    report = check_program(os.path.join(CORPUS, program))
    assert report.program_error is None
    assert report.diagnostics == []
    assert report.waived == []
    assert report.clean
    assert report.exit_code() == 0
    assert report.actions > 0  # the capture really recorded the program
