"""Tests for the ``python -m repro.analysis`` command line."""

import json
import os
import subprocess
import sys

import repro

CORPUS = os.path.join(os.path.dirname(__file__), "corpus")
SRC = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def run_cli(*args):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro.analysis", *args],
        capture_output=True,
        text=True,
        env=env,
        timeout=120,
    )


def corpus(name):
    return os.path.join(CORPUS, name)


class TestExitCodes:
    def test_clean_program_exits_zero(self):
        proc = run_cli(corpus("clean_event_ordered.py"))
        assert proc.returncode == 0
        assert "0 error(s), 0 warning(s)" in proc.stdout

    def test_warning_program_exits_one(self):
        proc = run_cli(corpus("missing_d2h.py"))
        assert proc.returncode == 1
        assert "warning[missing-d2h]" in proc.stdout

    def test_error_program_exits_two(self):
        proc = run_cli(corpus("race_waw.py"))
        assert proc.returncode == 2
        assert "error[stream-race]" in proc.stdout
        assert "hint:" in proc.stdout

    def test_worst_code_wins_across_programs(self):
        proc = run_cli(corpus("clean_strict_fifo.py"), corpus("race_waw.py"))
        assert proc.returncode == 2

    def test_missing_file_exits_two_with_stderr(self):
        proc = run_cli(corpus("does_not_exist.py"))
        assert proc.returncode == 2
        assert "does_not_exist" in proc.stderr

    def test_bad_waiver_rule_exits_two(self, tmp_path):
        path = tmp_path / "bad.py"
        path.write_text("x = 1  # hsan: ignore[bogus-rule]\n")
        proc = run_cli(str(path))
        assert proc.returncode == 2
        assert "bogus-rule" in proc.stderr


class TestJsonOutput:
    def test_json_is_parseable_despite_program_prints(self, tmp_path):
        path = tmp_path / "noisy.py"
        path.write_text(
            "print('interleaved chatter')\n"
            "from repro import HStreams, make_platform\n"
            "hs = HStreams(platform=make_platform('HSW', 1), backend='sim')\n"
            "s = hs.stream_create(domain=1, ncores=30)\n"
            "b = hs.buffer_create(nbytes=64)\n"
            "hs.enqueue_xfer(s, b)\n"
            "hs.thread_synchronize()\n"
        )
        proc = run_cli("--json", str(path))
        report = json.loads(proc.stdout)
        assert report["errors"] == 0
        assert "chatter" not in proc.stdout
        assert "chatter" in proc.stderr

    def test_json_report_carries_diagnostics(self):
        proc = run_cli("--json", corpus("race_raw.py"))
        report = json.loads(proc.stdout)
        assert proc.returncode == 2
        assert report["errors"] == 1
        diag = report["diagnostics"][0]
        assert diag["rule"] == "stream-race"
        assert diag["actions"]
        assert diag["actions"][0]["file"].endswith("race_raw.py")


class TestUsage:
    def test_no_arguments_is_a_usage_error(self):
        proc = run_cli()
        assert proc.returncode == 2
        assert "usage" in proc.stderr.lower()
