"""Tenant isolation: one tenant's faults never leak into another's view.

Two angles:

* the fault-matrix cell — an injected failure scoped to tenant A's
  namespace fails A's work and lands in A's ledger, while tenant B's
  concurrently in-flight work completes and B's ledger stays empty;
* a Hypothesis property — whatever interleaving two tenants' submits
  arrive in, each tenant observes exactly the per-op outcomes it would
  have observed running serially by itself.

Kernels are module-level (picklable) so the ``process-parity`` CI job
can replay this file with ``REPRO_BACKEND=process``.
"""

import asyncio

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.faults import FaultPlan, FaultSpec, InjectedFault, inject_faults
from repro.core.runtime import HStreams
from repro.service import StreamService
from repro.sim.kernels import dgemm


def _ok(*_args) -> None:
    pass


def _boom(*_args) -> None:
    raise ValueError("tenant-local kernel failure")


def _cost(*_args):
    return dgemm(64, 64, 64)


def make_runtime(backend="thread") -> HStreams:
    hs = HStreams(backend=backend, trace=False)
    hs.register_kernel("ok", fn=_ok, cost_fn=_cost)
    hs.register_kernel("boom", fn=_boom, cost_fn=_cost)
    return hs


class TestFaultMatrixCell:
    @pytest.mark.parametrize("backend", ["thread", "sim"])
    def test_tenant_a_fault_leaves_tenant_b_ledger_empty(self, backend):
        hs = make_runtime(backend)
        inject_faults(
            hs,
            FaultPlan(
                specs=(FaultSpec(kind="compute", namespace="tA", nth=1),)
            ),
        )
        try:

            async def main():
                svc = StreamService(hs, capacity=8)
                sa = await svc.session("tA")
                sb = await svc.session("tB")
                # Interleave: B's work is in flight while A's fault fires.
                subs_a = [await sa.submit("ok") for _ in range(3)]
                subs_b = [await sb.submit("ok") for _ in range(3)]
                await sa.drain()
                await sb.drain()
                a_states = [(await s.done).state for s in subs_a]
                b_states = [(await s.done).state for s in subs_b]
                # A: first op armed -> failed; the rest carry no operand
                # conflict with the poisoned footprint, so they run.
                assert a_states[0] == "failed"
                assert a_states[1:] == ["complete"] * 2
                assert b_states == ["complete"] * 3
                # Ledgers: the fault is A's alone.
                assert len(sa.errors()) == 1
                assert isinstance(sa.errors()[0], InjectedFault)
                assert sb.errors() == []
                # B's scoped barrier stays clean; A's surfaces its fault.
                hs.stream_synchronize(sb.stream)
                with pytest.raises(InjectedFault):
                    hs.stream_synchronize(sa.stream)
                # Per-tenant metrics partition the failure the same way.
                ns = hs.metrics()["namespaces"]
                assert ns["tA"]["failed"] == 1
                assert ns["tB"]["failed"] == 0
                assert ns["tB"]["completed"] == 3
                await sb.close()
                hs.clear_failure("tA")
                await sa.close()
                await svc.close()

            asyncio.run(main())
        finally:
            hs.fini()


async def _run_schedule(hs, schedule, fail_ops):
    """Submit ops in ``schedule`` order; return per-tenant outcome lists.

    ``schedule`` is a sequence of tenant names; tenant ``tA``'s op is
    drawn from ``fail_ops`` by its per-tenant index. Outcomes are the
    terminal record states in each tenant's own submission order.
    """
    svc = StreamService(hs, capacity=4)
    sessions = {}
    subs = {}
    counts = {}
    for tenant in schedule:
        if tenant not in sessions:
            sessions[tenant] = await svc.session(tenant)
            subs[tenant] = []
            counts[tenant] = 0
        idx = counts[tenant]
        counts[tenant] += 1
        kernel = "boom" if tenant == "tA" and idx in fail_ops else "ok"
        subs[tenant].append(await sessions[tenant].submit(kernel))
    outcomes = {}
    for tenant, session in sessions.items():
        await session.drain()
        outcomes[tenant] = [(await s.done).state for s in subs[tenant]]
        outcomes[tenant + ".errors"] = len(session.errors())
    for session in sessions.values():
        await session.close()
    await svc.close()
    return outcomes


class TestInterleavingParity:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        order=st.permutations(["tA"] * 4 + ["tB"] * 4),
        fail_ops=st.sets(st.integers(min_value=0, max_value=3), max_size=2),
    )
    def test_interleaved_equals_serial_per_tenant(self, order, fail_ops):
        # Interleaved: both tenants share the service in the drawn order.
        hs = make_runtime()
        try:
            interleaved = asyncio.run(_run_schedule(hs, order, fail_ops))
            hs.clear_failure()
        finally:
            hs.fini()
        # Serial: each tenant runs alone on a fresh runtime.
        serial = {}
        for tenant in ("tA", "tB"):
            hs = make_runtime()
            try:
                alone = asyncio.run(_run_schedule(hs, [tenant] * 4, fail_ops))
                serial[tenant] = alone[tenant]
                serial[tenant + ".errors"] = alone[tenant + ".errors"]
                hs.clear_failure()
            finally:
                hs.fini()
        assert interleaved["tA"] == serial["tA"]
        assert interleaved["tB"] == serial["tB"]
        assert interleaved["tA.errors"] == serial["tA.errors"]
        assert interleaved["tB.errors"] == serial["tB.errors"]
        # And B, which never fails, is untouched by A's failures.
        assert interleaved["tB"] == ["complete"] * 4
        assert interleaved["tB.errors"] == 0
