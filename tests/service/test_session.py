"""Service front-end tests: sessions, admission, backpressure, transport.

Kernels are module-level so they pickle: the ``process-parity`` CI job
re-runs this file with ``REPRO_BACKEND=process``, shipping them to
worker processes.
"""

import asyncio
import os
import time

import pytest

from repro.core.errors import HStreamsQuotaExceeded
from repro.core.runtime import HStreams
from repro.service import (
    ServiceError,
    SessionClosed,
    StreamService,
    TenantRejected,
    serve_unix,
)


def _noop(*_args) -> None:
    pass


def _slow(*_args) -> None:
    time.sleep(0.05)


def _boom(*_args) -> None:
    raise ValueError("injected kernel failure")


def make_runtime() -> HStreams:
    hs = HStreams(backend="thread", trace=False)
    hs.register_kernel("noop", fn=_noop)
    hs.register_kernel("slow", fn=_slow)
    hs.register_kernel("boom", fn=_boom)
    return hs


def run(coro):
    return asyncio.run(coro)


class TestSessions:
    def test_two_tenants_submit_and_drain(self):
        hs = make_runtime()
        try:

            async def main():
                svc = StreamService(hs, capacity=8)
                sa = await svc.session("alpha")
                sb = await svc.session("beta")
                subs = [await sa.submit("noop") for _ in range(5)]
                subs += [await sb.submit("noop") for _ in range(5)]
                for sub in subs:
                    record = await sub.done
                    assert record.state == "complete"
                ma = sa.metrics()
                mb = sb.metrics()
                assert ma["admission"]["admitted"] == 5
                assert mb["admission"]["admitted"] == 5
                assert ma["runtime"]["completed"] == 5
                assert mb["runtime"]["completed"] == 5
                assert ma["errors"] == 0 and mb["errors"] == 0
                await svc.close()

            run(main())
        finally:
            hs.fini()

    def test_result_raises_on_kernel_failure(self):
        hs = make_runtime()
        try:

            async def main():
                svc = StreamService(hs, capacity=4)
                session = await svc.session("alpha")
                sub = await session.submit("boom")
                with pytest.raises(ServiceError) as exc:
                    await session.result(sub)
                assert "failed" in str(exc.value)
                assert len(session.errors()) == 1
                await svc.close()

            run(main())
            hs.clear_failure("alpha")
        finally:
            hs.fini()

    def test_admission_queues_then_promotes(self):
        hs = make_runtime()
        try:

            async def main():
                svc = StreamService(hs, capacity=1)
                session = await svc.session("alpha")
                first = await session.submit("slow")
                # Second submit must wait for the first slot to free.
                t0 = asyncio.get_running_loop().time()
                second = await session.submit("noop")
                waited = asyncio.get_running_loop().time() - t0
                assert waited > 0.02  # deferred behind the slow kernel
                assert second.ticket.admit_latency > 0.0
                await first.done
                await second.done
                await svc.close()

            run(main())
        finally:
            hs.fini()

    def test_429_backpressure_on_full_queue(self):
        hs = make_runtime()
        try:

            async def main():
                svc = StreamService(hs, capacity=1, queue_limit=0)
                session = await svc.session("alpha")
                first = await session.submit("slow")
                with pytest.raises(TenantRejected):
                    await session.submit("noop")
                assert session.metrics()["admission"]["rejected"] == 1
                await first.done
                await svc.close()

            run(main())
        finally:
            hs.fini()

    def test_session_close_cancels_queued_work(self):
        hs = make_runtime()
        try:

            async def main():
                svc = StreamService(hs, capacity=1)
                session = await svc.session("alpha")
                first = await session.submit("slow")
                queued = asyncio.ensure_future(session.submit("noop"))
                await asyncio.sleep(0)  # let it reach the queue
                closer = asyncio.ensure_future(session.close())
                with pytest.raises(SessionClosed):
                    await queued
                await closer
                assert first.done.done()
                await svc.close()

            run(main())
        finally:
            hs.fini()

    def test_quota_backstop_guards_direct_enqueue(self):
        # The scheduler-side namespace quota catches work that bypasses
        # the admission controller entirely.
        hs = make_runtime()
        try:

            async def main():
                svc = StreamService(
                    hs, capacity=8, tenant_window=1, quota_headroom=1
                )
                session = await svc.session("alpha")
                direct = hs.stream_create(0, ncores=1, namespace="alpha")
                hs.enqueue_compute(direct, "slow")
                with pytest.raises(HStreamsQuotaExceeded):
                    hs.enqueue_compute(direct, "noop")
                hs.stream_synchronize(direct)
                await session.close()
                await svc.close()

            run(main())
        finally:
            hs.fini()

    def test_service_metrics_shape(self):
        hs = make_runtime()
        try:

            async def main():
                svc = StreamService(hs, capacity=4)
                svc.register_tenant("alpha", weight=2.0)
                session = await svc.session("alpha")
                await (await session.submit("noop")).done
                m = svc.metrics()
                assert m["capacity"] == 4
                assert m["sessions"] == 1
                block = m["tenants"]["alpha"]
                assert block["admission"]["weight"] == 2.0
                assert block["runtime"]["streams"] >= 1
                await svc.close()

            run(main())
        finally:
            hs.fini()


class TestFiniRace:
    def test_fini_during_active_session_is_deterministic(self):
        # Regression: fini() while a session has work in flight used to
        # race the asyncio loop — the completion bridge would
        # call_soon_threadsafe into a loop that was already closed.
        # fini() must drain session-owned streams synchronously and the
        # late completions must be dropped, not raised into the backend
        # worker.
        hs = make_runtime()

        async def main():
            svc = StreamService(hs, capacity=4)
            session = await svc.session("alpha")
            for _ in range(3):
                await session.submit("slow")
            return svc

        svc = run(main())
        # The loop from asyncio.run() is closed now; in-flight slow
        # kernels complete during fini's drain.
        hs.fini()
        assert not hs.initialized
        # The work itself finished (drained, not abandoned): the
        # tenant's runtime counters survived into the admission view.
        assert svc._admission.snapshot()["tenants"]["alpha"]["admitted"] == 3

    def test_close_after_fini_is_safe(self):
        hs = make_runtime()

        async def main():
            svc = StreamService(hs, capacity=4)
            session = await svc.session("alpha")
            await (await session.submit("noop")).done
            return svc

        svc = run(main())
        hs.fini()
        run(svc.close())  # must not raise despite the dead runtime


class TestUnixTransport:
    def test_round_trip_two_tenants(self, tmp_path):
        hs = make_runtime()
        path = os.path.join(str(tmp_path), "svc.sock")
        try:

            async def main():
                svc = StreamService(hs, capacity=8)
                server = await serve_unix(svc, path)

                async def client(tenant):
                    reader, writer = await asyncio.open_unix_connection(path)

                    async def rpc(req):
                        import json

                        writer.write(json.dumps(req).encode() + b"\n")
                        await writer.drain()
                        return json.loads(await reader.readline())

                    opened = await rpc({"op": "open", "tenant": tenant})
                    assert opened["ok"], opened
                    sid = opened["session"]
                    done = await rpc(
                        {"op": "submit", "session": sid, "kernel": "noop"}
                    )
                    assert done["ok"] and done["state"] == "complete"
                    metrics = await rpc({"op": "metrics", "tenant": tenant})
                    assert metrics["metrics"]["admission"]["admitted"] == 1
                    closed = await rpc({"op": "close", "session": sid})
                    assert closed["ok"]
                    writer.close()

                await asyncio.gather(client("alpha"), client("beta"))
                server.close()
                await server.wait_closed()
                await svc.close()

            run(main())
        finally:
            hs.fini()

    def test_unknown_session_and_op_errors(self, tmp_path):
        hs = make_runtime()
        path = os.path.join(str(tmp_path), "svc.sock")
        try:

            async def main():
                import json

                svc = StreamService(hs, capacity=2)
                server = await serve_unix(svc, path)
                reader, writer = await asyncio.open_unix_connection(path)

                async def rpc(req):
                    writer.write(json.dumps(req).encode() + b"\n")
                    await writer.drain()
                    return json.loads(await reader.readline())

                resp = await rpc({"op": "submit", "session": 99, "kernel": "noop"})
                assert resp["code"] == 404
                resp = await rpc({"op": "nonsense"})
                assert resp["code"] == 400
                writer.close()
                server.close()
                await server.wait_closed()
                await svc.close()

            run(main())
        finally:
            hs.fini()
