"""Unit tests for the weighted-fair admission controller."""

import pytest

from repro.service.admission import (
    AdmissionController,
    TenantRejected,
)


def drain_one(ctrl, ticket, now=0.0):
    """Release one ticket, returning the promotions."""
    return ctrl.release(ticket, now=now)


class TestBasicAdmission:
    def test_immediate_admit_under_capacity(self):
        ctrl = AdmissionController(capacity=2)
        t1 = ctrl.submit("a", now=1.0)
        t2 = ctrl.submit("a", now=2.0)
        assert t1.state == "admitted" and t2.state == "admitted"
        assert t1.admit_latency == 0.0
        assert ctrl.inflight == 2

    def test_queue_when_capacity_full(self):
        ctrl = AdmissionController(capacity=1)
        t1 = ctrl.submit("a")
        t2 = ctrl.submit("a")
        assert t1.state == "admitted"
        assert t2.state == "queued"

    def test_release_promotes_fifo_within_tenant(self):
        ctrl = AdmissionController(capacity=1)
        t1 = ctrl.submit("a", now=0.0)
        t2 = ctrl.submit("a", now=0.0)
        t3 = ctrl.submit("a", now=0.0)
        promoted = ctrl.release(t1, now=5.0)
        assert promoted == [t2]
        assert t2.t_admit == 5.0 and t2.admit_latency == 5.0
        assert ctrl.release(t2, now=6.0) == [t3]

    def test_tenant_window_limits_concurrency(self):
        ctrl = AdmissionController(capacity=10, default_window=2)
        tickets = [ctrl.submit("a") for _ in range(4)]
        states = [t.state for t in tickets]
        assert states == ["admitted", "admitted", "queued", "queued"]
        # Another tenant still has the global headroom.
        assert ctrl.submit("b").state == "admitted"

    def test_no_overtake_of_own_backlog(self):
        # Even with a free slot, a tenant's new request queues behind
        # its own deferred work (per-tenant FIFO).
        ctrl = AdmissionController(capacity=2, default_window=1)
        t1 = ctrl.submit("a")
        t2 = ctrl.submit("a")
        t3 = ctrl.submit("a")
        assert (t1.state, t2.state, t3.state) == ("admitted", "queued", "queued")
        promoted = ctrl.release(t1)
        assert promoted == [t2]


class TestRejection:
    def test_reject_when_queue_full(self):
        ctrl = AdmissionController(capacity=1, default_queue_limit=1)
        ctrl.submit("a")
        ctrl.submit("a")  # fills the queue
        with pytest.raises(TenantRejected) as exc:
            ctrl.submit("a")
        assert exc.value.tenant == "a"
        assert ctrl.snapshot()["tenants"]["a"]["rejected"] == 1

    def test_zero_queue_limit_rejects_all_deferrals(self):
        ctrl = AdmissionController(capacity=1, default_queue_limit=0)
        ctrl.submit("a")
        with pytest.raises(TenantRejected):
            ctrl.submit("a")

    def test_rejection_does_not_charge_virtual_time(self):
        # Regression: a rejected request must not advance the tenant's
        # virtual finish tag — charging it starves exactly the tenants
        # already being throttled (positive feedback on overload).
        ctrl = AdmissionController(capacity=1)
        ctrl.register("victim", queue_limit=0)
        blocker = ctrl.submit("victim", cost=1.0)
        vfinish = ctrl._tenants["victim"].vfinish
        for _ in range(100):
            with pytest.raises(TenantRejected):
                ctrl.submit("victim", cost=1.0)
        assert ctrl._tenants["victim"].vfinish == vfinish
        ctrl.release(blocker)
        # With no charge accrued, the tenant's next tag competes at
        # parity instead of 100 virtual costs behind everyone else.
        nxt = ctrl.submit("victim", cost=1.0)
        assert nxt.state == "admitted"
        assert nxt.tag == pytest.approx(vfinish)


class TestWeightedFairness:
    def test_promotion_in_tag_order_respects_weights(self):
        # Tenant a has weight 2, b weight 1; both saturate. Over 30
        # promotions a should get ~2x the slots.
        ctrl = AdmissionController(capacity=1)
        ctrl.register("a", weight=2.0)
        ctrl.register("b", weight=1.0)
        blocker = ctrl.submit("a")
        queued = [ctrl.submit("a") for _ in range(40)] + [
            ctrl.submit("b") for _ in range(40)
        ]
        assert all(t.state == "queued" for t in queued)
        grants = {"a": 0, "b": 0}
        current = blocker
        for _ in range(30):
            promoted = ctrl.release(current)
            assert len(promoted) == 1
            current = promoted[0]
            grants[current.tenant] += 1
        assert grants["a"] == pytest.approx(2 * grants["b"], abs=2)

    def test_equal_weights_alternate(self):
        ctrl = AdmissionController(capacity=1)
        blocker = ctrl.submit("a")
        for _ in range(10):
            ctrl.submit("a")
            ctrl.submit("b")
        order = []
        current = blocker
        for _ in range(10):
            current = ctrl.release(current)[0]
            order.append(current.tenant)
        # SFQ with equal weights and equal costs interleaves.
        assert order.count("a") == pytest.approx(order.count("b"), abs=1)


class TestCancel:
    def test_cancel_queued(self):
        ctrl = AdmissionController(capacity=1)
        t1 = ctrl.submit("a")
        t2 = ctrl.submit("a")
        assert ctrl.cancel(t2) is True
        assert t2.state == "cancelled"
        assert ctrl.release(t1) == []

    def test_cancel_admitted_is_noop(self):
        ctrl = AdmissionController(capacity=1)
        t1 = ctrl.submit("a")
        assert ctrl.cancel(t1) is False
        assert t1.state == "admitted"


class TestValidation:
    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            AdmissionController(capacity=0)

    def test_bad_weight(self):
        ctrl = AdmissionController(capacity=1)
        with pytest.raises(ValueError):
            ctrl.register("a", weight=0.0)

    def test_bad_cost(self):
        ctrl = AdmissionController(capacity=1)
        with pytest.raises(ValueError):
            ctrl.submit("a", cost=0.0)

    def test_double_release_rejected(self):
        ctrl = AdmissionController(capacity=1)
        t = ctrl.submit("a")
        ctrl.release(t)
        with pytest.raises(ValueError):
            ctrl.release(t)

    def test_snapshot_shape(self):
        ctrl = AdmissionController(capacity=3, default_window=2)
        ctrl.submit("a")
        snap = ctrl.snapshot()
        assert snap["capacity"] == 3 and snap["inflight"] == 1
        block = snap["tenants"]["a"]
        assert block["admitted"] == 1 and block["window"] == 2
