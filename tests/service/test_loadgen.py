"""Load generator + virtual-time replay: determinism, schema, gating."""

import dataclasses
import json

import pytest

from repro.bench.perf import GATED_UNIT, check_rows, rows_from_json, rows_to_json
from repro.service.loadgen import (
    main,
    make_trace,
    replay,
    replay_end_to_end,
    replay_rows,
    tenant_weights,
)

SESSIONS = 20_000


@pytest.fixture(scope="module")
def result():
    # window * ntenants > capacity, so the WFQ (not the per-tenant
    # window) is what allocates slots under this deliberate overload.
    trace = make_trace(SESSIONS, ntenants=4, seed=7)
    return replay(trace, capacity=64, window=32, queue_limit=64)


class TestTrace:
    def test_same_seed_same_trace(self):
        a = make_trace(1000, ntenants=4, seed=3)
        b = make_trace(1000, ntenants=4, seed=3)
        assert a.arrive == b.arrive
        assert a.tenant == b.tenant
        assert a.cost == b.cost

    def test_different_seed_differs(self):
        a = make_trace(1000, ntenants=4, seed=3)
        b = make_trace(1000, ntenants=4, seed=4)
        assert a.arrive != b.arrive

    def test_arrivals_monotone(self):
        trace = make_trace(5000, seed=1)
        assert all(
            trace.arrive[i] < trace.arrive[i + 1]
            for i in range(len(trace) - 1)
        )

    def test_weights_premium_half(self):
        assert tenant_weights(8) == [2.0] * 4 + [1.0] * 4
        assert tenant_weights(3) == [2.0, 1.0, 1.0]

    def test_rejects_single_tenant(self):
        with pytest.raises(ValueError):
            make_trace(10, ntenants=1)


class TestReplay:
    def test_conservation(self, result):
        # Every session is exactly one of: completed, rejected.
        assert result["completed"] + result["rejected"] == SESSIONS
        per_tenant = sum(
            block["completed"] + block["rejected"]
            for block in result["tenants"].values()
        )
        assert per_tenant == SESSIONS

    def test_deterministic_rows(self, result):
        trace = make_trace(SESSIONS, ntenants=4, seed=7)
        again = replay(trace, capacity=64, window=32, queue_limit=64)
        assert replay_rows(again, "x") == replay_rows(result, "x")

    def test_fairness_near_weighted_parity(self, result):
        # Uniform offered load + 2:1 weights: weighted completion ratio
        # across tenants stays near 1 under saturation.
        assert 1.0 <= result["fairness"] < 1.25
        premium = result["tenants"]["t0"]["completed"]
        standard = result["tenants"]["t2"]["completed"]
        assert premium > 1.5 * standard

    def test_latency_percentiles_ordered(self, result):
        assert 0.0 <= result["p50_admit_s"] <= result["p99_admit_s"]
        assert result["p99_admit_s"] < result["makespan_s"]

    def test_row_schema(self, result):
        rows = replay_rows(result, "20000s4t")
        metrics = [r.metric for r in rows]
        assert metrics == [
            "p50_admit_vus",
            "p99_admit_vus",
            "fairness_x100",
            "rejected",
            "incomplete",
            "makespan_vs",
        ]
        assert all(r.bench == "service_load:20000s4t" for r in rows)
        gated = [r for r in rows if r.unit == GATED_UNIT]
        assert len(gated) == 5
        assert all(isinstance(r.value, int) for r in gated)
        # A saturated replay leaves nothing unaccounted for.
        incomplete = next(r for r in rows if r.metric == "incomplete")
        assert incomplete.value == 0

    def test_rows_round_trip_and_gate(self, result):
        rows = replay_rows(result, "g")
        restored = rows_from_json(rows_to_json(rows))
        assert check_rows(rows, restored, tolerance=0.0) == []
        # A worsened current value vs baseline must trip the gate.
        worse = [
            dataclasses.replace(r, value=r.value * 2 + 10)
            if r.metric == "p99_admit_vus"
            else r
            for r in rows
        ]
        problems = check_rows(worse, restored, tolerance=0.25)
        assert len(problems) == 1 and "p99_admit_vus" in problems[0]

    def test_vanished_gated_counter_fails_gate(self, result):
        # A gated baseline row the current run no longer emits is a
        # failure — a silently dropped counter is how a harness rots.
        rows = replay_rows(result, "g")
        current = [r for r in rows if r.metric != "rejected"]
        problems = check_rows(current, rows, tolerance=0.25)
        assert any("rejected" in p and "missing" in p for p in problems)


class TestEndToEnd:
    def test_slice_completes_through_real_service(self):
        trace = make_trace(150, ntenants=4, seed=11)
        out = replay_end_to_end(trace, 150, capacity=16, window=4)
        assert out["completed"] == 150
        assert out["inflight_after"] == 0
        admitted = sum(b["admitted"] for b in out["tenants"].values())
        assert admitted == 150


class TestCli:
    def test_json_report_and_self_check(self, tmp_path, capsys):
        rows_path = tmp_path / "rows.json"
        report_path = tmp_path / "report.json"
        argv = [
            "--sessions", "5000", "--tenants", "4", "--seed", "9",
            "--capacity", "32", "--window", "8", "--queue-limit", "32",
            "--json", str(rows_path), "--report", str(report_path),
        ]
        assert main(argv) == 0
        rows = rows_from_json(rows_path.read_text())
        assert any(r.metric == "p99_admit_vus" for r in rows)
        report = json.loads(report_path.read_text())
        assert report["replay"]["sessions"] == 5000
        # Re-run gating against its own emitted rows: must pass.
        assert main(argv + ["--check", str(rows_path)]) == 0
        assert "service gate ok" in capsys.readouterr().out

    def test_check_fails_on_regression(self, tmp_path, capsys):
        rows_path = tmp_path / "rows.json"
        base = ["--sessions", "3000", "--tenants", "4", "--seed", "5"]
        assert main(base + ["--json", str(rows_path)]) == 0
        rows = rows_from_json(rows_path.read_text())
        shrunk = [
            dataclasses.replace(r, value=max(0, r.value // 3))
            if r.unit == GATED_UNIT
            else r
            for r in rows
        ]
        rows_path.write_text(rows_to_json(shrunk))
        assert main(base + ["--check", str(rows_path)]) == 1
        assert "SERVICE GATE" in capsys.readouterr().err
