"""Tests for the sweep helpers."""

from repro.bench.runner import grid_sweep, sweep


class TestSweep:
    def test_series_built_in_order(self):
        s = sweep("sq", lambda x: x * x, [1, 2, 3])
        assert s.label == "sq"
        assert s.x == [1, 2, 3]
        assert s.y == [1, 4, 9]

    def test_empty_axis(self):
        s = sweep("empty", lambda x: x, [])
        assert s.x == [] and s.peak == 0.0


class TestGridSweep:
    def test_cartesian_product(self):
        out = grid_sweep(lambda a, b: a * 10 + b, {"a": [1, 2], "b": [3, 4]})
        assert out == {(1, 3): 13, (1, 4): 14, (2, 3): 23, (2, 4): 24}

    def test_axis_order_follows_mapping(self):
        out = grid_sweep(lambda b, a: (a, b), {"b": [1], "a": [2]})
        assert list(out) == [(1, 2)]  # (b, a) order
        assert out[(1, 2)] == (2, 1)

    def test_single_axis(self):
        out = grid_sweep(lambda n: n + 1, {"n": [0, 5]})
        assert out == {(0,): 1, (5,): 6}
