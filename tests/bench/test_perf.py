"""Tests for the hot-path perf harness (:mod:`repro.bench.perf`).

The regression gate must (a) pass a run against its own baseline,
(b) fail a deliberate 2x counter regression, (c) ignore wall-clock
rows, (d) give allocator-dependent counters their wider allowance,
(e) flag gated counters that silently vanish from the current run, and
(f) skip rows the current run demoted to informational (quick sample
counts, or hardware where the measurement cannot gate — e.g. the
cpu_scaling speedup on a single-CPU box).
"""

import json

import pytest

from repro.bench import perf
from repro.bench.perf import PerfRow


def row(bench="b", metric="m", value=10.0, unit="count", n=5, backend="window"):
    return PerfRow(bench, metric, value, unit, n, backend)


class TestCheckRows:
    def test_identical_run_passes(self):
        rows = [row(), row(metric="wall", unit="s", value=0.5)]
        assert perf.check_rows(rows, rows, tolerance=0.25) == []

    def test_two_x_regression_fails(self):
        baseline = [row(value=10.0)]
        current = [row(value=20.0)]
        problems = perf.check_rows(current, baseline, tolerance=0.25)
        assert len(problems) == 1
        assert "exceeds baseline" in problems[0]

    def test_within_tolerance_passes(self):
        # limit = 10 * 1.25 + 1 absolute slack
        assert perf.check_rows([row(value=13.5)], [row(value=10.0)], 0.25) == []
        assert perf.check_rows([row(value=13.6)], [row(value=10.0)], 0.25)

    def test_wall_clock_rows_never_gate(self):
        baseline = [row(metric="p50", unit="s", value=0.001)]
        current = [row(metric="p50", unit="s", value=100.0)]
        assert perf.check_rows(current, baseline, tolerance=0.25) == []

    def test_alloc_metrics_get_two_x_allowance(self):
        baseline = [row(metric="allocated_blocks_per_enqueue", value=40.0)]
        ok = [row(metric="allocated_blocks_per_enqueue", value=75.0)]
        bad = [row(metric="allocated_blocks_per_enqueue", value=90.0)]
        assert perf.check_rows(ok, baseline, tolerance=0.25) == []
        assert perf.check_rows(bad, baseline, tolerance=0.25)

    def test_missing_gated_counter_fails(self):
        baseline = [row()]
        problems = perf.check_rows([], baseline, tolerance=0.25)
        assert problems and "missing" in problems[0]

    def test_improvements_pass(self):
        assert perf.check_rows([row(value=1.0)], [row(value=10.0)], 0.25) == []

    def test_row_demoted_to_info_is_skipped(self):
        # The emitter downgrades a row's unit exactly when the
        # measurement cannot be made at gating fidelity; the checker
        # honors that instead of comparing a noise value to the bar.
        baseline = [row(value=0.0)]
        current = [row(value=50.0, unit="info")]
        assert perf.check_rows(current, baseline, tolerance=0.25) == []


class TestRowSerialization:
    def test_json_round_trip(self):
        rows = [row(), row(metric="wall", unit="s", value=0.25)]
        text = perf.rows_to_json(rows)
        assert perf.rows_from_json(text) == rows
        # The BENCH_perf.json schema is exactly these six keys.
        entry = json.loads(text)[0]
        assert set(entry) == {"bench", "metric", "value", "unit", "n", "backend"}


class TestSuite:
    @pytest.fixture(scope="class")
    def tiny_rows(self):
        # Tiny depths keep this a smoke test, not a benchmark.
        return perf.run_suite(quick=True, depths=(5,), probes=3)

    def test_schema_and_coverage(self, tiny_rows):
        assert all(isinstance(r, PerfRow) for r in tiny_rows)
        benches = {r.bench.split(":")[0] for r in tiny_rows}
        assert benches >= {
            "enqueue_scan",
            "enqueue_admission",
            "dispatch_throughput",
            "cpu_scaling",
            "transfer_overhead",
            "elision",
            "sanitizer_overhead",
        }
        assert any(r.unit == perf.GATED_UNIT for r in tiny_rows)
        assert any(r.unit == "s" for r in tiny_rows)

    def test_dispatch_throughput_covers_all_backends(self, tiny_rows):
        backends = {
            r.backend for r in tiny_rows if r.bench == "dispatch_throughput"
        }
        assert backends == {"thread", "sim", "process"}

    def test_indexed_beats_naive_on_counters(self, tiny_rows):
        by_key = {(r.bench, r.metric): r.value for r in tiny_rows}
        indexed = by_key[("enqueue_scan:disjoint:indexed:d5", "scan_comparisons")]
        naive = by_key[("enqueue_scan:disjoint:naive:d5", "scan_comparisons")]
        assert indexed < naive

    def test_self_check_passes_and_2x_fails(self, tiny_rows):
        assert perf.check_rows(tiny_rows, tiny_rows) == []
        doubled = [
            PerfRow(r.bench, r.metric, r.value * 2 + 10, r.unit, r.n, r.backend)
            if r.unit == perf.GATED_UNIT
            else r
            for r in tiny_rows
        ]
        assert perf.check_rows(doubled, tiny_rows)

    def test_cli_check_gates(self, tiny_rows, tmp_path, capsys):
        baseline = tmp_path / "base.json"
        baseline.write_text(perf.rows_to_json(tiny_rows))
        halved = [
            PerfRow(r.bench, r.metric, max(0.0, r.value / 2 - 1), r.unit, r.n, r.backend)
            if r.unit == perf.GATED_UNIT
            else r
            for r in tiny_rows
        ]
        shrunk = tmp_path / "shrunk.json"
        shrunk.write_text(perf.rows_to_json(halved))
        argv = ["--quick", "--depths", "5", "--probes", "3", "--json", "-"]
        assert perf.main([*argv, "--check", str(baseline)]) == 0
        assert perf.main([*argv, "--check", str(shrunk)]) == 1
        assert "PERF GATE" in capsys.readouterr().err
