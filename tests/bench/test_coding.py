"""Tests for the Fig. 3 coding-comparison analyzer."""

import pytest

from repro.bench.coding import (
    IMPLEMENTATIONS,
    PAPER_FIG3,
    PHASES,
    analyze,
)


class TestAnalyzer:
    def test_all_models_analyzable(self):
        for model in IMPLEMENTATIONS:
            m = analyze(model)
            assert m.total_lines > 0
            assert m.total_api_calls >= m.unique_apis > 0

    def test_phases_are_the_papers(self):
        m = analyze("hStreams")
        assert set(m.lines_per_phase) == set(PHASES)

    def test_hstreams_phase_breakdown(self):
        """Fig. 3's top block: hStreams has code in every phase group."""
        m = analyze("hStreams")
        for phase in ("Initialization", "Data alloc", "Data transfers",
                      "Synchronization", "Data dealloc", "Finalization"):
            assert m.lines_per_phase[phase] > 0, phase

    def test_ompss_only_computation_and_sync(self):
        m = analyze("OmpSs")
        busy = {p for p, c in m.lines_per_phase.items() if c > 0}
        assert busy == {"Computation", "Synchronization"}

    def test_cuda_needs_explicit_finalization(self):
        """Events and streams must be destroyed: CUDA's finalization
        phase is the largest of all models (paper's point about explicit
        creation/destruction)."""
        cuda = analyze("CUDA")
        hstr = analyze("hStreams")
        assert cuda.lines_per_phase["Finalization"] > hstr.lines_per_phase["Finalization"]

    def test_relative_orderings_match_paper(self):
        lines = {m: analyze(m).total_lines for m in IMPLEMENTATIONS}
        paper = {m: PAPER_FIG3[m][0] for m in IMPLEMENTATIONS}
        # The paper's ranking by code volume survives translation.
        rank = sorted(lines, key=lines.get)
        paper_rank = sorted(paper, key=paper.get)
        assert rank[0] == paper_rank[0] == "OMP 4.0"
        assert set(rank[-2:]) == set(paper_rank[-2:]) == {"CUDA", "OpenCL"}

    def test_unique_api_counts_reasonable(self):
        assert analyze("hStreams").unique_apis == 8  # matches the paper exactly
        assert analyze("OMP 4.0").unique_apis == 1


class TestImplementationsRun:
    @pytest.mark.parametrize("model", list(IMPLEMENTATIONS))
    def test_small_instance_runs(self, model):
        elapsed = IMPLEMENTATIONS[model](n=3000, tile=1500)
        assert elapsed > 0
