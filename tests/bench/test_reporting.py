"""Tests for the benchmark reporting helpers."""

import pytest

from repro.bench.reporting import ComparisonTable, Series, ascii_plot, format_table


class TestSeries:
    def test_add_and_peaks(self):
        s = Series("x")
        s.add(1, 10.0)
        s.add(2, 30.0)
        s.add(3, 20.0)
        assert s.peak == 30.0
        assert s.final == 20.0

    def test_empty_series(self):
        s = Series("empty")
        assert s.peak == 0.0 and s.final == 0.0


class TestComparisonTable:
    def test_ratio_computed(self):
        t = ComparisonTable("t")
        t.add("a", 100.0, 90.0)
        assert t.rows[0]["ratio"] == pytest.approx(0.9)

    def test_paperless_row(self):
        t = ComparisonTable("t")
        t.add("a", None, 5.0)
        assert t.rows[0]["ratio"] is None
        assert "-" in t.render()

    def test_render_contains_all_rows(self):
        t = ComparisonTable("my title", unit="GF/s")
        t.add("config-one", 10.0, 12.0)
        t.add("config-two", 20.0, 18.0)
        text = t.render()
        assert "my title" in text and "config-one" in text and "GF/s" in text

    def test_max_deviation(self):
        t = ComparisonTable("t")
        t.add("a", 100.0, 90.0)   # 10%
        t.add("b", 100.0, 130.0)  # 30%
        t.add("c", None, 5.0)     # ignored
        assert t.max_deviation() == pytest.approx(0.30)

    def test_max_deviation_empty(self):
        assert ComparisonTable("t").max_deviation() == 0.0


class TestAsciiPlot:
    def test_plots_all_series_glyphs(self):
        s1 = Series("alpha")
        s2 = Series("beta")
        for i in range(5):
            s1.add(i, i * 2.0)
            s2.add(i, 10.0 - i)
        text = ascii_plot([s1, s2], width=40, height=8, title="demo")
        assert "demo" in text
        assert "alpha" in text and "beta" in text
        assert "*" in text and "o" in text

    def test_empty(self):
        assert ascii_plot([]) == "(no data)"

    def test_single_point(self):
        s = Series("p")
        s.add(1.0, 1.0)
        assert "p" in ascii_plot([s], width=20, height=5)


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bb"], [["x", "y"], ["longer", "z"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(row) == len(lines[0]) for row in lines[1:3])

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])
