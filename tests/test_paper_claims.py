"""Fast, suite-level checks of the paper's headline claims.

The benchmarks regenerate the full figures; these are scaled-down
versions of the same claims that run in seconds inside the ordinary test
suite, so a regression in any headline behaviour fails `pytest tests/`
without needing the benchmark pass.
"""

import pytest

from repro import HStreams, RuntimeConfig, make_platform
from repro.apps.rtm import run_rtm
from repro.linalg import hetero_cholesky, hetero_matmul, magma_cholesky
from repro.linalg.host_blas import register_blas
from repro.ompss.matmul import ompss_matmul
from repro.sim.kernels import dgemm


def sim(host="HSW", ncards=1, **kw):
    return HStreams(platform=make_platform(host, ncards), backend="sim",
                    trace=False, **kw)


class TestHeadlineClaims:
    def test_ooo_beats_strict_fifo_on_one_stream(self):
        """§II/§IV: the FIFO *semantic* with out-of-order execution
        pipelines what strict FIFO serializes."""
        def run(strict):
            hs = sim()
            register_blas(hs)
            s = hs.stream_create(domain=1, ncores=61, strict_fifo=strict)
            tiles = [hs.buffer_create(nbytes=8 * 1500**2, domains=[1])
                     for _ in range(6)]
            t0 = hs.elapsed()
            for b in tiles:
                hs.enqueue_xfer(s, b)
                hs.enqueue_compute(s, "dgemm", args=(1500, 1500, 1500),
                                   operands=(b.all_inout(),),
                                   cost=dgemm(1500, 1500, 1500))
            hs.thread_synchronize()
            return hs.elapsed() - t0

        assert run(strict=True) > 1.1 * run(strict=False)

    def test_hetero_matmul_beats_host_and_card_alone(self):
        """Fig. 6's qualitative core."""
        n = 8000
        both = hetero_matmul(sim(ncards=1), n, tile=1000).gflops
        card = hetero_matmul(sim(ncards=1), n, tile=1000, use_host=False).gflops
        host = hetero_matmul(sim(ncards=0), n, tile=1000).gflops
        assert both > card and both > host

    def test_ivb_needs_load_balancing(self):
        """Fig. 6: the weak host must not get an equal share."""
        lb = hetero_matmul(sim("IVB", 2), 12000, tile=1500, load_balance=True)
        nb = hetero_matmul(sim("IVB", 2), 12000, tile=1500, load_balance=False)
        assert lb.gflops > 1.15 * nb.gflops

    def test_hstreams_cholesky_beats_magma_with_host(self):
        """Fig. 7: spare host resources beat a panels-only host."""
        n = 12000
        h = hetero_cholesky(sim(), n, tile=n // 20, host_streams=4).gflops
        m = magma_cholesky(sim(), n, tile=n // 20).gflops
        assert h > m

    def test_ompss_hstreams_layer_beats_cuda_layer(self):
        """§IV: 1.45x at 4K in the paper; >1.15x required here."""
        t_h = ompss_matmul("hstreams", 4096, 4).elapsed_s
        t_c = ompss_matmul("cuda", 4096, 4).elapsed_s
        assert t_c > 1.15 * t_h

    def test_rtm_async_pipelining_helps(self):
        """§VI: asynchronous pipelined offload beats synchronous."""
        grid = (512, 256, 256)
        hs1 = sim(ncards=2)
        sync = run_rtm(hs1, grid=grid, steps=6, nranks=2, scheme="sync")
        hs2 = sim(ncards=2)
        asyn = run_rtm(hs2, grid=grid, steps=6, nranks=2, scheme="async")
        assert asyn.mpoints_per_s > sync.mpoints_per_s

    def test_buffer_pool_removes_realloc_cost(self):
        """§III: COI overheads negligible with the 2 MB pool."""
        def realloc_cost(pooled):
            hs = sim(config=RuntimeConfig(use_buffer_pool=pooled))
            b = hs.buffer_create(nbytes=2 << 20, domains=[1])
            hs.buffer_destroy(b)
            t0 = hs.elapsed()
            hs.buffer_create(nbytes=2 << 20, domains=[1])
            return hs.elapsed() - t0

        assert realloc_cost(True) == pytest.approx(0.0)
        assert realloc_cost(False) > 0

    def test_transfer_overhead_brackets(self):
        """§III: 20-30 us small-transfer overhead, <5% for multi-MB."""
        def overhead(nbytes):
            hs = sim()
            s = hs.stream_create(domain=1, ncores=61)
            b = hs.buffer_create(nbytes=nbytes, domains=[1])
            t0 = hs.elapsed()
            hs.enqueue_xfer(s, b)
            hs.thread_synchronize()
            total = hs.elapsed() - t0
            wire = nbytes / 6.8e9 + hs.platform.pcie_latency_s
            return total - wire, (total - wire) / total

        small_abs, _ = overhead(32 << 10)
        assert 15e-6 < small_abs < 35e-6
        _, big_frac = overhead(32 << 20)
        assert big_frac < 0.05

    def test_uniform_interface_spans_domain_kinds(self):
        """§IV: one enqueue API for host, card, and remote node."""
        from repro.sim.platforms import make_fabric_platform

        for platform, domain in [
            (make_platform("HSW", 1), 0),       # host-as-target
            (make_platform("HSW", 1), 1),       # PCIe card
            (make_fabric_platform("HSW", 1), 1),  # remote node
        ]:
            hs = HStreams(platform=platform, backend="sim", trace=False)
            register_blas(hs)
            s = hs.stream_create(domain=domain, ncores=4)
            b = hs.buffer_create(nbytes=1 << 16, domains=[domain])
            hs.enqueue_xfer(s, b)
            hs.enqueue_compute(s, "dgemm", args=(128, 128, 128),
                               operands=(b.all_inout(),),
                               cost=dgemm(128, 128, 128))
            hs.thread_synchronize()
